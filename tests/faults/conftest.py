"""Shared topology for the chaos suite: a 2-group, 6-server star.

::

    cli --- core --- wiz
             |\
       sw-g1 | sw-g2
      /  |   |  |  \
  mon1 s0-s2 | s3-s5 (mon2)

Cutting sw-g1<->core partitions group g1 (monitor + 3 servers) from the
wizard; the servers of g2 hang off sw-g2 next to their monitor mon2.
"""

from __future__ import annotations

from dataclasses import replace

from repro.apps import FileServer, MatMulWorker, shape_host_egress
from repro.cluster import Cluster, Deployment
from repro.core import LeaseResponder
from repro.core.config import DEFAULT_CONFIG

#: chaos-test timing: 1 s probes, 3 misses, 1 s pushes — so a dead
#: server expires after 3 s and the acceptance recovery budget
#: (probe_miss_limit * probe_interval + transmit_interval) is 4 s
CHAOS_CONFIG = replace(
    DEFAULT_CONFIG,
    probe_interval=1.0,
    probe_miss_limit=3,
    transmit_interval=1.0,
    netmon_interval=1.0,
    client_timeout=1.0,
    client_retries=2,
    client_backoff_base=0.1,
    client_backoff_cap=1.0,
    transmit_backoff_cap=2.0,
    transmit_stall_limit=3.0,
    quarantine_period=5.0,
)

#: freshness demand used by the chaos scenarios: a record whose monitor
#: path has been dead for >= 10 s no longer qualifies
CHAOS_REQUIREMENT = "host_cpu_free > 0.1\nhost_status_age < 10"


def build_chaos_world(seed: int = 0, config=CHAOS_CONFIG):
    """Cluster + started deployment; returns (cluster, dep, name->addr)."""
    cluster = Cluster(seed=seed)
    wiz = cluster.add_host("wiz")
    cli = cluster.add_host("cli")
    mon1 = cluster.add_host("mon1")
    mon2 = cluster.add_host("mon2")
    core = cluster.add_switch("core")
    sw1 = cluster.add_switch("sw-g1")
    sw2 = cluster.add_switch("sw-g2")
    cluster.link(wiz, core, subnet="10.0.0")
    cluster.link(cli, core, subnet="10.0.3")
    cluster.link(mon1, sw1, subnet="10.0.1")
    cluster.link(sw1, core, subnet="10.0.1")
    cluster.link(mon2, sw2, subnet="10.0.2")
    cluster.link(sw2, core, subnet="10.0.2")
    servers = []
    for i in range(6):
        s = cluster.add_host(f"s{i}")
        cluster.link(s, sw1 if i < 3 else sw2,
                     subnet="10.0.1" if i < 3 else "10.0.2")
        servers.append(s)
    cluster.finalize()
    dep = Deployment(cluster, wizard_host=wiz, config=config)
    dep.add_group("g1", mon1, servers[:3])
    dep.add_group("g2", mon2, servers[3:])
    dep.start()
    addrs = {s.name: s.addr for s in servers}
    return cluster, dep, addrs


#: failover-suite timing: chaos timing plus the HA knobs — a replica
#: whose freshest DB is older than 4 s answers REPLY_STALE, dead
#: replicas/servers sit in quarantine for 5 s, and the health lease
#: pings every 0.5 s declaring death after 2 s of silence
FAILOVER_CONFIG = replace(
    CHAOS_CONFIG,
    wizard_staleness_limit=4.0,
    wizard_quarantine_period=5.0,
    lease_interval=0.5,
    lease_timeout=2.0,
    session_retries=3,
)

#: slow worker CPUs so one matmul block takes ~2 s: the job is long
#: enough that a mid-run crash is genuinely mid-stream, and recovery
#: time is measurable against the no-fault baseline
FAILOVER_MATMUL_SPEED = 1.5e6
#: servers shaped to 8 Mbit/s so a massd block takes ~0.1 s
FAILOVER_MASSD_MBPS = 8.0


def build_failover_world(seed: int = 0, config=FAILOVER_CONFIG,
                         sanitize: bool = False, app: str = "matmul"):
    """The chaos star plus the HA pieces: a second wizard machine
    (``wiz2``, subnet 10.0.4) forming a replica set with ``wiz``, and an
    application service (matmul worker or massd file server) with a
    :class:`LeaseResponder` on every server.

    Returns ``(cluster, dep, addrs, services, responders)`` where
    ``addrs`` also maps ``wiz``/``wiz2`` and the two daemon dicts are
    keyed by server name (for ``ChaosController.register_daemon``).
    """
    cluster = Cluster(seed=seed, sanitize=sanitize)
    wiz = cluster.add_host("wiz")
    wiz2 = cluster.add_host("wiz2")
    cli = cluster.add_host("cli")
    mon1 = cluster.add_host("mon1")
    mon2 = cluster.add_host("mon2")
    core = cluster.add_switch("core")
    sw1 = cluster.add_switch("sw-g1")
    sw2 = cluster.add_switch("sw-g2")
    cluster.link(wiz, core, subnet="10.0.0")
    cluster.link(wiz2, core, subnet="10.0.4")
    cluster.link(cli, core, subnet="10.0.3")
    cluster.link(mon1, sw1, subnet="10.0.1")
    cluster.link(sw1, core, subnet="10.0.1")
    cluster.link(mon2, sw2, subnet="10.0.2")
    cluster.link(sw2, core, subnet="10.0.2")
    servers = []
    speeds = {"matmul": FAILOVER_MATMUL_SPEED} if app == "matmul" else None
    for i in range(6):
        s = cluster.add_host(f"s{i}", speeds=speeds)
        cluster.link(s, sw1 if i < 3 else sw2,
                     subnet="10.0.1" if i < 3 else "10.0.2")
        servers.append(s)
    cluster.finalize()
    dep = Deployment(cluster, config=config, wizard_hosts=[wiz, wiz2])
    dep.add_group("g1", mon1, servers[:3])
    dep.add_group("g2", mon2, servers[3:])
    dep.start()
    services: dict[str, object] = {}
    responders: dict[str, LeaseResponder] = {}
    for s in servers:
        if app == "matmul":
            svc = MatMulWorker(s, mss=8192)
        else:
            svc = FileServer(s, mss=8192)
            shape_host_egress(s, FAILOVER_MASSD_MBPS)
        svc.start()
        services[s.name] = svc
        responder = LeaseResponder(s, config)
        responder.start()
        responders[s.name] = responder
    addrs = {s.name: s.addr for s in servers}
    addrs["wiz"] = wiz.addr
    addrs["wiz2"] = wiz2.addr
    return cluster, dep, addrs, services, responders


#: gray-failure-suite timing: the failover knobs plus the sessions'
#: throughput-floor watchdog — sample progress every 0.5 s, trust the
#: learned cadence after 3 gaps, migrate at phi 2.5 (~99.7 % confidence
#: the stall is abnormal).  min_samples=3 because a matmul session only
#: records ~1 progress gap per block cycle.
GRAYFAIL_CONFIG = replace(
    FAILOVER_CONFIG,
    session_watchdog_interval=0.5,
    session_watchdog_min_samples=3,
    session_watchdog_phi=2.5,
)


def register_app_daemons(chaos, services, responders, role: str) -> None:
    """Put the application-plane daemons on the controller's registry so
    ``crash-host`` stops them (and ``restart-host`` brings them back)."""
    for name, svc in services.items():
        chaos.register_daemon(name, role, svc)
    for name, responder in responders.items():
        chaos.register_daemon(name, "lease", responder)


def poll_replies(cluster, dep, *, n: int, requirement: str = CHAOS_REQUIREMENT,
                 until: float, period: float = 1.0, results: list | None = None):
    """Spawn a client process polling the wizard every ``period`` seconds.

    Appends ``(sim_time, sorted_server_addrs)`` tuples to ``results`` (a
    new list is returned when not supplied) until ``until``.
    """
    log = results if results is not None else []
    client = dep.client_for(cluster.host("cli"))

    def poller():
        yield cluster.sim.timeout(dep.warm_up_seconds())
        while cluster.sim.now < until:
            reply = yield from client.request_servers(requirement, n)
            log.append((cluster.sim.now, tuple(sorted(reply.servers))))
            yield cluster.sim.timeout(period)

    cluster.sim.process(poller(), name="chaos-poller")
    return log
