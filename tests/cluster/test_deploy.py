"""Tests for full deployments of the Smart library on a cluster."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, Deployment
from repro.core import Config, Mode
from repro.core.records import MSG_NETDB, MSG_SECDB, MSG_SYSDB


def two_group_world(mode=None):
    cluster = Cluster(seed=13)
    wizard_host = cluster.add_host("wiz")
    mon1 = cluster.add_host("mon1")
    mon2 = cluster.add_host("mon2")
    s1 = cluster.add_host("s1")
    s2 = cluster.add_host("s2")
    core = cluster.add_switch("core")
    for h in (wizard_host, mon1, mon2):
        cluster.link(h, core)
    cluster.link(s1, mon1)
    cluster.link(s2, mon2)
    cluster.finalize()
    cfg = Config(probe_interval=0.5, transmit_interval=0.5, netmon_interval=1.0)
    dep = Deployment(cluster, wizard_host=wizard_host, config=cfg, mode=mode)
    dep.add_group("g1", monitor_host=mon1, servers=[s1],
                  security_levels={"s1": 2})
    dep.add_group("g2", monitor_host=mon2, servers=[s2])
    return cluster, dep


class TestDeployment:
    def test_requires_group_before_start(self):
        cluster = Cluster(seed=14)
        w = cluster.add_host("w")
        o = cluster.add_host("o")
        cluster.link(w, o)
        cluster.finalize()
        dep = Deployment(cluster, wizard_host=w)
        with pytest.raises(RuntimeError):
            dep.start()

    def test_duplicate_group_rejected(self):
        cluster, dep = two_group_world()
        with pytest.raises(ValueError):
            dep.add_group("g1", monitor_host=dep.groups["g1"].monitor_host,
                          servers=[])

    def test_double_start_rejected(self):
        cluster, dep = two_group_world()
        dep.start()
        with pytest.raises(RuntimeError):
            dep.start()

    def test_all_databases_populate(self):
        cluster, dep = two_group_world()
        dep.start()
        cluster.run(until=dep.warm_up_seconds() + 3.0)
        sysdb = dep.receiver.database(MSG_SYSDB)
        assert {r.host for r in sysdb.values()} == {"s1", "s2"}
        netdb = dep.receiver.database(MSG_NETDB)
        assert "g2" in netdb["g1"].metrics
        assert "g1" in netdb["g2"].metrics
        secdb = dep.receiver.database(MSG_SECDB)
        assert secdb["s1"].level == 2
        assert secdb["s2"].level == 1

    def test_netmons_peer_all_to_all(self):
        cluster, dep = two_group_world()
        assert set(dep.groups["g1"].netmon.peers) == {"g2"}
        assert set(dep.groups["g2"].netmon.peers) == {"g1"}

    def test_stop_quiesces_everything(self):
        cluster, dep = two_group_world()
        dep.start()
        cluster.run(until=3.0)
        dep.stop()
        handled = dep.wizard.requests_handled
        sent = dep.groups["g1"].transmitter.snapshots_sent
        cluster.run(until=10.0)
        assert dep.wizard.requests_handled == handled
        assert dep.groups["g1"].transmitter.snapshots_sent == sent

    def test_group_prefix_map(self):
        cluster, dep = two_group_world()
        s1 = dep.groups["g1"].servers[0]
        assert dep.wizard.group_of(s1.addr) == "g1"

    def test_distributed_mode_pulls_on_request(self):
        cluster, dep = two_group_world(mode=Mode.DISTRIBUTED)
        dep.start()
        client = dep.client_for(dep.wizard_host)
        out = {}

        def p():
            yield cluster.sim.timeout(3.0)
            tx_before = dep.groups["g1"].transmitter.snapshots_sent
            assert tx_before == 0  # nothing pushed in distributed mode
            reply = yield from client.request_servers("host_cpu_free > 0.2", 2)
            out["n"] = len(reply.servers)
            out["tx"] = dep.groups["g1"].transmitter.snapshots_sent

        cluster.sim.process(p())
        cluster.run(until=15.0)
        assert out["n"] == 2
        assert out["tx"] == 1


class TestFailureHandling:
    def test_server_crash_leaves_pool_and_rejoins(self):
        """End-to-end staleness: a dead probe disappears from wizard replies."""
        cluster, dep = two_group_world()
        dep.start()
        client = dep.client_for(dep.wizard_host)
        results = {}

        def p():
            yield cluster.sim.timeout(3.0)
            reply = yield from client.request_servers("host_cpu_free > 0.2", 5)
            results["before"] = len(reply.servers)
            # s1's probe dies (host crash)
            dep.groups["g1"].probes[0].stop()
            yield cluster.sim.timeout(5.0)  # > miss limit at 0.5s interval
            reply = yield from client.request_servers("host_cpu_free > 0.2", 5)
            results["after"] = len(reply.servers)
            dep.groups["g1"].probes[0].start()
            yield cluster.sim.timeout(3.0)
            reply = yield from client.request_servers("host_cpu_free > 0.2", 5)
            results["rejoined"] = len(reply.servers)

        cluster.sim.process(p())
        cluster.run(until=30.0)
        assert results == {"before": 2, "after": 1, "rejoined": 2}
