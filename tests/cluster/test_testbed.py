"""Tests for the builder, the 11-machine testbed and the WAN paths."""

from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    TESTBED_MACHINES,
    TESTBED_SEGMENTS,
    WAN_PATHS,
    build_testbed,
    build_wan_paths,
)


class TestClusterBuilder:
    def test_unfinalized_run_rejected(self):
        cluster = Cluster(seed=0)
        cluster.add_host("a")
        with pytest.raises(RuntimeError):
            cluster.run(until=1)

    def test_unknown_host_lookup(self):
        cluster = Cluster(seed=0)
        with pytest.raises(KeyError, match="unknown host"):
            cluster.host("ghost")

    def test_host_has_machine_node_stack_procfs(self):
        cluster = Cluster(seed=0)
        h = cluster.add_host("box", bogomips=1234.5, mem_mb=64)
        other = cluster.add_host("peer")
        cluster.link(h, other)
        cluster.finalize()
        assert h.machine.bogomips == 1234.5
        assert h.machine.memory.total == 64 << 20
        assert h.addr == other.stack.resolve("box")
        assert "bogomips\t: 1234.50" in h.procfs.read("/proc/cpuinfo")
        assert "eth0:" in h.procfs.read("/proc/net/dev")


class TestTestbed:
    @pytest.fixture(scope="class")
    def cluster(self):
        return build_testbed()

    def test_all_11_machines_exist(self, cluster):
        assert len(cluster.hosts) == 11
        assert {m.name for m in TESTBED_MACHINES} == set(cluster.hosts)

    def test_hardware_matches_table_5_1(self, cluster):
        dal = cluster.host("dalmatian").machine
        assert dal.bogomips == 4771.02
        assert dal.memory.total == 512 << 20
        sagit = cluster.host("sagit").machine
        assert sagit.bogomips == 1730.15
        assert sagit.memory.total == 128 << 20

    def test_six_segments(self, cluster):
        assert len(TESTBED_SEGMENTS) == 6
        prefixes = {h.addr.rsplit(".", 1)[0] for h in cluster.hosts.values()}
        assert set(TESTBED_SEGMENTS) <= prefixes

    def test_sagit_reaches_lab_through_dalmatian(self, cluster):
        hops = cluster.network.path_hops("sagit", "dione")
        assert "dalmatian" in hops

    def test_lab_cross_segment_goes_through_gateway(self, cluster):
        hops = cluster.network.path_hops("mimas", "pandora-x")
        assert "dalmatian" in hops

    def test_same_segment_does_not_cross_gateway(self, cluster):
        hops = cluster.network.path_hops("helene", "phoebe")
        assert "dalmatian" not in hops

    def test_matmul_ranking_matches_fig_5_2(self, cluster):
        """P3-866 and P4-2.4 beat the P4-1.6~1.8 group (thesis Fig 5.2)."""
        speed = {m.name: m.matmul_flops for m in TESTBED_MACHINES}
        fast = {"dalmatian", "dione"}
        mid = {"sagit", "lhost"}
        slow = {"mimas", "telesto", "helene", "phoebe", "calypso",
                "titan-x", "pandora-x"}
        assert min(speed[n] for n in fast) > max(speed[n] for n in mid)
        assert min(speed[n] for n in mid) > max(speed[n] for n in slow)

    def test_all_pairs_routable(self, cluster):
        names = list(cluster.hosts)
        for a in names:
            for b in names:
                if a != b:
                    cluster.network.path_hops(a, b)  # raises if unroutable


class TestWanPaths:
    def test_builds_all_six(self):
        cluster, endpoints = build_wan_paths()
        assert set(endpoints) == {"a", "b", "c", "d", "e", "f"}

    def test_loopback_path_probes_self(self):
        cluster, endpoints = build_wan_paths()
        src, dst = endpoints["f"]
        assert dst == src.name

    def test_path_base_rtts_match_table_3_2(self):
        """Ping-size probes should see roughly the published RTTs."""
        from repro.core import measure_rtt

        cluster, endpoints = build_wan_paths()
        results = {}

        def prober(index, src, dst):
            rtt = yield from measure_rtt(src.stack, dst, 56, timeout=5.0)
            results[index] = rtt * 1e3

        procs = [cluster.sim.process(prober(i, s, d))
                 for i, (s, d) in endpoints.items()]
        from repro.bench.experiments import _drive
        for p in procs:
            _drive(cluster, p)
        for spec in WAN_PATHS:
            measured = results[spec.index]
            assert measured == pytest.approx(spec.ping_rtt_ms, rel=0.5), spec.index
