"""Repo-wide static gate: run ruff/mypy when present, else skip.

CI installs both (see .github/workflows/ci.yml); locally the suite
degrades to a skip so the tier-1 tests never depend on tools outside
the baked-in toolchain.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent


def _run(tool: str, *args: str) -> subprocess.CompletedProcess:
    if shutil.which(tool) is None:
        pytest.skip(f"{tool} not installed in this environment")
    return subprocess.run(
        [tool, *args], cwd=REPO, capture_output=True, text=True, timeout=300,
    )


def test_ruff_clean():
    result = _run("ruff", "check", ".")
    assert result.returncode == 0, result.stdout + result.stderr


def test_mypy_clean():
    result = _run("mypy", "src/repro")
    assert result.returncode == 0, result.stdout + result.stderr


def test_pyproject_configures_both_gates():
    text = (REPO / "pyproject.toml").read_text()
    assert "[tool.ruff" in text
    assert "[tool.mypy]" in text
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    assert "ruff check" in ci
    assert "mypy src/repro" in ci


def test_ci_runs_repro_check_gate():
    """The lint job runs every static gate through the --all umbrella."""
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    assert "repro check --all src/repro" in ci


def test_ci_runs_flow_gate():
    """The CI ``flow`` job gates the whole-program message-flow analyzer:
    clean tree, seeded fixtures must fail, byte-stable double run, and the
    analysis-time benchmark criterion."""
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    assert "check --flow src/repro" in ci
    assert "f40*.py" in ci
    assert "bench_flowcheck.py" in ci


def test_ci_runs_hotpath_gate():
    """The CI ``hotpath`` job gates the H-series perf analyzer and the
    sim profiler: clean tree, seeded fixtures must fail, byte-stable
    double run, deterministic dual-run attribution, and the kernel
    benchmark's profiler-overhead criterion."""
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    assert "check --perf src/repro" in ci
    assert "h50*.py" in ci
    assert "repro profile matmul" in ci
    assert "bench_kernel.py" in ci


def test_ci_runs_static_gates_under_dash_O():
    """Every analyzer gate re-runs under ``python -O`` in CI so nothing
    load-bearing hides in an ``assert``."""
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    assert "python -O -m repro check --all src/repro" in ci


def test_repro_check_clean_under_dash_O():
    """The same gate must hold when asserts are stripped: the analyzers
    and the records import-time guards are explicit raises, not asserts."""
    result = subprocess.run(
        [sys.executable, "-O", "-m", "repro", "check", "src"],
        capture_output=True, text=True, timeout=120, cwd=REPO,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_ci_runs_sanitize_job():
    """The CI ``sanitize`` job drives both smoke worlds under the
    happens-before detector (zero races required) and re-runs the
    seeded-race fixture expecting it to fail."""
    ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    assert "--sanitize matmul" in ci
    assert "--sanitize massd" in ci
    assert "r300_seeded_race.py" in ci


def test_repro_check_clean_on_src():
    """The repo's own analyzer gate: ``repro check src`` must exit 0."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "check", "src"],
        capture_output=True, text=True, timeout=120, cwd=REPO,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "file(s) clean" in result.stdout


def test_repro_check_flags_seeded_fixtures():
    """...and it must still *fail* on the seeded-violation fixture tree
    (a vacuously-green analyzer would pass both)."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "check", "tests/analysis/fixtures"],
        capture_output=True, text=True, timeout=120, cwd=REPO,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert result.returncode == 1, result.stdout + result.stderr


def test_no_syntax_errors_anywhere():
    """A pure-stdlib floor under the CI lint job: every tracked python
    file must at least compile."""
    import ast

    failures = []
    for path in sorted(REPO.glob("src/**/*.py")) + sorted(REPO.glob("tests/**/*.py")):
        try:
            ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:
            failures.append(f"{path}: {exc}")
    assert not failures, "\n".join(failures)


def test_lint_cli_available_as_module():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--help"],
        capture_output=True, text=True, timeout=60,
        cwd=REPO,
    )
    assert result.returncode == 0
    assert "repro-lint" in result.stdout
