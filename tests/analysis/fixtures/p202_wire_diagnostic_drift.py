"""Seeded REPRO202 violation: NAK wire form missing a Diagnostic field."""

from dataclasses import dataclass


@dataclass(frozen=True)
class WireDiagnostic:
    code: str
    severity: str
    message: str
    line: int = 0
    # 'col' dropped: spans on the wire silently lose their column
