"""Clean under suppression: every R-series rule silenced by its noqa."""

MSG_GHOST = 9  # repro: noqa[REPRO302]


def fetch(conn):
    msg, _ = yield conn.recv()  # repro: noqa[REPRO301]
    return msg


def forget(shm, key):
    shm.segment(key).write(None)  # repro: noqa[REPRO303]


def hijack(sim, event):
    def jump(ev):
        sim._now = 0.0  # repro: noqa[REPRO304]

    event.add_callback(jump)


def spawn(sim, job):
    sim.process(job)  # repro: noqa[REPRO305]


def shield(conn):
    try:
        conn.send(b"ping", 4)
    except:  # repro: noqa[REPRO306]  # noqa: E722
        pass
