"""Seeded REPRO501: a full status-DB copy on every message.

``BadPusher`` snapshots the whole DB (``dict(netdb)``) each time its
push loop wakes — per-iteration cost grows with fleet size.  The clean
twin ``GoodPusher`` tracks dirty groups and ships only their deltas,
touching the DB by key instead of copying (or even scanning) it.
"""

from repro.sim import Interrupt

INTERVAL = 2.0


class BadPusher:
    def __init__(self, sim, channel, netdb):
        self.sim = sim
        self.channel = channel
        self.netdb = netdb

    def run(self):
        try:
            while True:
                yield self.sim.timeout(INTERVAL)
                snapshot = dict(self.netdb)
                self.channel.push(snapshot)
        except Interrupt:
            pass


class GoodPusher:
    def __init__(self, sim, channel, netdb):
        self.sim = sim
        self.channel = channel
        self.netdb = netdb
        self.dirty_groups = set()

    def mark_dirty(self, group):
        self.dirty_groups.add(group)

    def run(self):
        try:
            while True:
                yield self.sim.timeout(INTERVAL)
                for group in self.dirty_groups:
                    self.channel.push((group, self.netdb[group].delta()))
                self.dirty_groups.clear()
        except Interrupt:
            pass
