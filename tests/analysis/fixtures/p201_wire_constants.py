"""Seeded REPRO201 violations: colliding tags, unset tag, equal replies."""

MSG_SYSDB = 1
MSG_NETDB = 1
MSG_PULL = 0

REPLY_OK = 0
REPLY_NAK = 0
