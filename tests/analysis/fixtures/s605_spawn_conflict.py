"""Seeded REPRO605: a connection handed to a spawned pump, then closed
locally.

``serve_then_kill`` establishes a connection, spawns ``pump(conn)``
to drive it, and immediately closes the connection out from under the
spawned generator — two owners, one lifecycle.  ``serve_clean`` is
the clean twin: once spawned, the pump owns the close.
"""

SERVICE_PORT = 9000


def serve_then_kill(sim, stack):
    conn = yield from stack.tcp.connect("server", SERVICE_PORT)
    sim.process(pump(conn))
    conn.close()


def serve_clean(sim, stack):
    conn = yield from stack.tcp.connect("server", SERVICE_PORT)
    sim.process(pump(conn))


def pump(conn):
    try:
        while True:
            msg, _ = yield conn.recv()
            conn.send(msg, 16)
    except Interrupt:
        conn.close()
