"""Clean under suppression: ``# repro: noqa[CODE]`` silences a finding."""

import time


def elapsed_wall_seconds(t0: float) -> float:
    return time.time() - t0  # repro: noqa[REPRO102]
