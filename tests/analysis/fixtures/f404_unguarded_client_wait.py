"""Seeded REPRO404: the client request path blocks with no way out.

``client_fetch`` sends a request and then waits forever on the reply —
no deadline, no ``Interrupt`` guard; a silent registry hangs the caller.
``client_fetch_deadline`` is the required shape: the reply getter races
a timeout and is cancelled on the losing path.
"""

REGISTRY_PORT = 6006


def client_fetch(stack, payload):
    sock = stack.udp_socket()
    sock.sendto("registry", REGISTRY_PORT, payload=payload)
    reply = yield sock.recv()
    sock.close()
    return reply


def client_fetch_deadline(stack, sim, payload, timeout):
    sock = stack.udp_socket()
    sock.sendto("registry", REGISTRY_PORT, payload=payload)
    get = sock.recv()
    deadline = sim.timeout(timeout)
    fired = yield sim.any_of([get, deadline])
    if get not in fired:
        sock.rx.cancel(get)
    sock.close()
    return fired.get(get)
