"""Seeded REPRO303 violation: a segment write invisible to the sanitizer."""


def forget_status(shm, key):
    seg = shm.segment(key)
    seg.write({})


def forget_status_chained(shm, key):
    shm.segment(key).write(None)
