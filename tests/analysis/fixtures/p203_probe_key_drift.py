"""Seeded REPRO203 violation: probe report keys off the variable registry."""


def scan() -> dict[str, float]:
    values = {
        "host_system_load1": 0.0,
        "host_system_load5": 0.0,
        "host_system_load15": 0.0,
        "host_cpu_user": 0.0,
        "host_cpu_nice": 0.0,
        "host_cpu_system": 0.0,
        "host_cpu_idle": 0.0,
        "host_cpu_free": 0.0,
        "host_cpu_bogomips": 0.0,
        "host_memory_total": 0.0,
        "host_memory_used": 0.0,
        "host_memory_free": 0.0,
        "host_disk_allreq": 0.0,
        "host_disk_rreq": 0.0,
        "host_disk_rblocks": 0.0,
        "host_disk_wreq": 0.0,
        "host_disk_wblocks": 0.0,
        "host_network_rbytesps": 0.0,
        "host_network_rpacketsps": 0.0,
        "host_network_tbytesps": 0.0,
        "host_network_tpacketsps": 0.0,
        # drifted: a key the requirement language does not define, and
        # host_security_level dropped
        "host_gpu_teraflops": 0.0,
    }
    return values
