"""Seeded REPRO601: send on a connection the machine says is not ready.

``send_before_handshake`` binds the *un-driven* connect generator —
the TcpConnection machine calls that state *connecting*, where no op
is legal — and immediately sends on it.  ``send_after_handshake`` is
the clean twin: it drives the handshake with ``yield from`` first.
"""

SERVICE_PORT = 9000


def send_before_handshake(stack, payload):
    conn = stack.tcp.connect("server", SERVICE_PORT)
    conn.send(payload, 64)


def send_after_handshake(stack, payload):
    conn = yield from stack.tcp.connect("server", SERVICE_PORT)
    conn.send(payload, 64)
    conn.close()
