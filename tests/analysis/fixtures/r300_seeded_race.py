"""Seeded REPRO300 *dynamic* race: run with ``repro check --sanitize``.

Two processes touch one shared segment at the same simulated instant with
no happens-before edge between them (no lock, no message, no join).  The
static R-series rules are all satisfied — only the runtime detector can
see this one.
"""

from repro.sim import SharedMemory, shared


def run(sim):
    db = shared(SharedMemory(sim).segment(1), name="db")

    def writer():
        yield sim.timeout(1.0)
        db.write({"x": 1})

    def reader():
        yield sim.timeout(1.0)
        db.read()

    w = sim.process(writer(), name="writer")
    r = sim.process(reader(), name="reader")
    sim.run()
    assert w.triggered and r.triggered
