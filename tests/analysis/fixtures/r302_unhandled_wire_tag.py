"""Seeded REPRO302 violation: a wire tag with no registered handler."""

MSG_ROGUE = 7

#: negative case: a registered tag is fine anywhere it is re-declared
MSG_PULL = 4
