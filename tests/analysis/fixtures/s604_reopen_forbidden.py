"""Seeded REPRO604: failover invoked on a session that is already
closed.

``close_then_failover`` closes its SmartSession and then asks it to
fail over — the declared machine only permits ``failover`` from *open*
or *leased*, so the re-open races the teardown it just performed.
``failover_then_close`` is the clean twin (failover while leased,
close last), and ``resume_fresh_rsocket`` seeds the same rule on the
ReliableSocket machine: ``resume()`` before any ``connect()``.
"""

REQUIREMENT = "host_cpu_free < 0.5"


def close_then_failover(client, conn):
    session = SmartSession(client, conn, REQUIREMENT)
    session.start_lease()
    session.close()
    replacement = yield from session.failover()
    return replacement


def failover_then_close(client, conn):
    session = SmartSession(client, conn, REQUIREMENT)
    session.start_lease()
    replacement = yield from session.failover()
    session.close()
    return replacement


def resume_fresh_rsocket(stack):
    rsock = ReliableSocket(stack, "server", 9000)
    yield from rsock.resume()
