"""Seeded REPRO400 violations: WIRE_TAG_HANDLERS drifted from reality.

Three drifts in one registry: a handler path that resolves to nothing
(the method was renamed away), a registered tag nothing ever sends, and
a tag sent on the wire with no registered consumer.  ``MSG_PING`` is the
control: registered, resolvable, and sent — no finding.
"""

MSG_PING = 1
MSG_PONG = 2
MSG_IDLE = 3
MSG_LOST = 4

WIRE_TAG_HANDLERS = {
    "MSG_PING": ("f400_registry_drift.Daemon.handle_ping",),
    "MSG_PONG": ("f400_registry_drift.Daemon.vanished",),
    "MSG_IDLE": ("f400_registry_drift.Daemon.handle_idle",),
}


class Daemon:
    def handle_ping(self, msg):
        return msg

    def handle_idle(self, msg):
        return msg


def broadcast(conn):
    conn.send(MSG_PING, 8)
    conn.send(MSG_PONG, 8)
    conn.send(MSG_LOST, 8)
