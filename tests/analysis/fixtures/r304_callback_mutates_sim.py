"""Seeded REPRO304 violation: an event callback rewinding the clock."""


def hijack(sim, event):
    def jump(ev):
        sim._now = 0.0

    event.add_callback(jump)
    event.add_callback(lambda ev: setattr(ev, "note", sim.now))  # negative
