"""Seeded REPRO500: a request handler that re-sorts the status DB.

``BadWizard`` rescans (and re-sorts) ``sysdb`` on every request its
service loop handles — the exact per-message linear scan the H-series
polices.  ``GoodWizard`` is the clean twin: it memoizes the candidate
order and re-sorts only when the key set changed, so its handler loop
iterates a cached list instead of the DB.
"""

from repro.sim import Interrupt

PORT = 6001


class BadWizard:
    def __init__(self, stack, sysdb):
        self.stack = stack
        self.sysdb = sysdb

    def serve(self):
        sock = self.stack.udp_socket(PORT)
        try:
            while True:
                dgram = yield sock.recv()
                reply = self.handle(dgram, self.sysdb)
                sock.sendto(dgram.src, dgram.sport, payload=reply)
        except Interrupt:
            sock.close()

    def handle(self, dgram, sysdb):
        picks = []
        for addr in sorted(sysdb):
            if sysdb[addr].cpu_free > 0.9:
                picks.append(addr)
        return tuple(picks)


class GoodWizard:
    def __init__(self, stack, sysdb):
        self.stack = stack
        self.sysdb = sysdb
        self._order = []
        self._order_keys = None

    def serve(self):
        sock = self.stack.udp_socket(PORT)
        try:
            while True:
                dgram = yield sock.recv()
                reply = self.handle(dgram, self.sysdb)
                sock.sendto(dgram.src, dgram.sport, payload=reply)
        except Interrupt:
            sock.close()

    def _candidate_order(self, sysdb):
        if self._order_keys != sysdb.keys():
            self._order = sorted(sysdb)
            self._order_keys = frozenset(self._order)
        return self._order

    def handle(self, dgram, sysdb):
        picks = []
        for addr in self._candidate_order(sysdb):
            if sysdb[addr].cpu_free > 0.9:
                picks.append(addr)
        return tuple(picks)
