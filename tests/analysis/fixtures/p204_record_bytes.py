"""Seeded REPRO204 violation: record too small for the registry."""

SERVER_RECORD_BYTES = 64
