"""Seeded REPRO402: the PR 4 ``recv_timeout`` getter leak, re-created.

``recv_timeout`` races a ``Store`` getter against a deadline and simply
returns on the timeout path — the getter stays registered and silently
eats the next datagram.  ``recv_timeout_fixed`` shows the required
shape: the losing getter is cancelled.
"""


class LeakySocket:
    def __init__(self, sim, rx):
        self.sim = sim
        self.rx = rx

    def recv_timeout(self, timeout):
        get = self.rx.get()
        deadline = self.sim.timeout(timeout)
        fired = yield self.sim.any_of([get, deadline])
        if get in fired:
            return fired[get]
        return None

    def recv_timeout_fixed(self, timeout):
        get = self.rx.get()
        deadline = self.sim.timeout(timeout)
        fired = yield self.sim.any_of([get, deadline])
        if get in fired:
            return fired[get]
        self.rx.cancel(get)
        return None
