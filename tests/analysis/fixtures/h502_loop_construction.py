"""Seeded REPRO502: constructing the same object per event.

``BadEmitter`` builds a ``Header`` with only loop-invariant arguments
inside its per-datagram loop — every iteration allocates an identical
object.  ``GoodEmitter`` hoists the construction out of the loop and
reuses it.
"""

from repro.sim import Interrupt

MAGIC = 0x5A5A
VERSION = 3
PORT = 6002


class Header:
    def __init__(self, magic, version):
        self.magic = magic
        self.version = version


class BadEmitter:
    def __init__(self, stack):
        self.stack = stack

    def run(self):
        sock = self.stack.udp_socket(PORT)
        try:
            while True:
                dgram = yield sock.recv()
                header = Header(MAGIC, VERSION)
                sock.sendto(dgram.src, dgram.sport,
                            payload=(header, dgram.payload))
        except Interrupt:
            sock.close()


class GoodEmitter:
    def __init__(self, stack):
        self.stack = stack

    def run(self):
        sock = self.stack.udp_socket(PORT)
        header = Header(MAGIC, VERSION)
        try:
            while True:
                dgram = yield sock.recv()
                sock.sendto(dgram.src, dgram.sport,
                            payload=(header, dgram.payload))
        except Interrupt:
            sock.close()
