"""Seeded REPRO504: unbounded blocking work on the dispatch path.

``BadTap.attach`` registers ``_drain`` as a kernel event callback, and
``_drain`` spins in a ``while True`` with no break/return/yield — run
synchronously inside ``Simulator.step``, it would never hand control
back and every simulated host would stall.  ``GoodTap``'s callback does
one bounded unit of work per event.
"""


class BadTap:
    def __init__(self, sim):
        self.sim = sim
        self.queue = []
        self.drained = 0

    def attach(self):
        self.sim.add_callback(self._drain)

    def _drain(self, event):
        while True:
            if self.queue:
                self.queue.pop()
                self.drained += 1


class GoodTap:
    def __init__(self, sim):
        self.sim = sim
        self.queue = []
        self.drained = 0

    def attach(self):
        self.sim.add_callback(self._drain)

    def _drain(self, event):
        if self.queue:
            self.queue.pop()
            self.drained += 1
