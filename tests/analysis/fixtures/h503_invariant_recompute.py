"""Seeded REPRO503: recomputing a loop-invariant value per message.

``BadRanker`` re-sorts its (fixed) priority table inside the receive
loop — the classic missing-cache shape.  ``GoodRanker`` computes the
order once, before the loop.
"""

from repro.sim import Interrupt

PORT = 6003


class BadRanker:
    def __init__(self, stack, priorities):
        self.stack = stack
        self.priorities = priorities

    def run(self, priorities):
        sock = self.stack.udp_socket(PORT)
        try:
            while True:
                dgram = yield sock.recv()
                order = sorted(priorities)
                sock.sendto(dgram.src, dgram.sport, payload=tuple(order))
        except Interrupt:
            sock.close()


class GoodRanker:
    def __init__(self, stack, priorities):
        self.stack = stack
        self.priorities = priorities

    def run(self, priorities):
        sock = self.stack.udp_socket(PORT)
        order = tuple(sorted(priorities))
        try:
            while True:
                dgram = yield sock.recv()
                sock.sendto(dgram.src, dgram.sport, payload=order)
        except Interrupt:
            sock.close()
