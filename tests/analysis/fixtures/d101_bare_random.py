"""Seeded REPRO101 violation: the process-global ``random`` module."""

import random


def jitter() -> float:
    return random.random() * 0.5
