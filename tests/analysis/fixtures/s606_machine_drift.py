"""Seeded REPRO606: a declared state machine that drifted from the
analyzer's registry.

This ``TCP_LISTENER_MACHINE`` literal grew a *draining* state and a
``listening.drain`` transition that the analyzer knows nothing about —
the declaration in the source and the machine ``--proto`` actually
enforces no longer agree, so the living protocol spec is lying.  The
``UDP_SOCKET_MACHINE`` twin below matches the registry exactly and
stays silent.
"""

TCP_LISTENER_MACHINE: dict = {
    "name": "TcpListener",
    "initial": "listening",
    "states": ("listening", "draining", "closed"),
    "final": ("closed",),
    "transitions": {
        "listening.accept": "listening",
        "listening.drain": "draining",
        "draining.close": "closed",
        "listening.close": "closed",
    },
}

UDP_SOCKET_MACHINE: dict = {
    "name": "UdpSocket",
    "initial": "open",
    "states": ("open", "closed"),
    "final": ("closed",),
    "transitions": {
        "open.sendto": "open",
        "open.recv": "open",
        "open.recv_timeout": "open",
        "open.close": "closed",
    },
}
