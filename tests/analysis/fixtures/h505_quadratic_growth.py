"""Seeded REPRO505: quadratic accumulation on message-rate state.

``BadDeduper`` appends every new sender to a list and membership-scans
that list per datagram — O(n) scan over O(messages) state, so the
daemon's total work is quadratic in traffic.  ``GoodDeduper`` keeps a
set: same first-seen semantics, O(1) membership.
"""

from repro.sim import Interrupt

PORT = 6005


class BadDeduper:
    def __init__(self, stack):
        self.stack = stack
        self.seen = []

    def run(self):
        sock = self.stack.udp_socket(PORT)
        try:
            while True:
                dgram = yield sock.recv()
                if dgram.src not in self.seen:
                    self.seen.append(dgram.src)
                    sock.sendto(dgram.src, dgram.sport, payload=b"new")
        except Interrupt:
            sock.close()


class GoodDeduper:
    def __init__(self, stack):
        self.stack = stack
        self.seen = set()

    def run(self):
        sock = self.stack.udp_socket(PORT)
        try:
            while True:
                dgram = yield sock.recv()
                if dgram.src not in self.seen:
                    self.seen.add(dgram.src)
                    sock.sendto(dgram.src, dgram.sport, payload=b"new")
        except Interrupt:
            sock.close()
