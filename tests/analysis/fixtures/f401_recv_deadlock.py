"""Seeded REPRO401: a two-daemon recv/recv deadlock.

Each daemon blocks on its own socket before it will feed the other —
A answers only after hearing from B, B answers only after hearing from
A, and neither wait carries a timeout.  Statically a wait-for cycle;
dynamically a world that hangs forever at t=0.  Both loops are
``Interrupt``-guarded (so the file is clean under the per-file R-series)
— only the whole-program view can see the cycle.
"""

from repro.sim import Interrupt

PORT_A = 5001
PORT_B = 5002


class DaemonA:
    def __init__(self, stack):
        self.stack = stack

    def run(self):
        sock = self.stack.udp_socket(PORT_A)
        try:
            while True:
                dgram = yield sock.recv()
                sock.sendto(dgram.src, PORT_B, payload=b"a")
        except Interrupt:
            sock.close()


class DaemonB:
    def __init__(self, stack):
        self.stack = stack

    def run(self):
        sock = self.stack.udp_socket(PORT_B)
        try:
            while True:
                dgram = yield sock.recv()
                sock.sendto(dgram.src, PORT_A, payload=b"b")
        except Interrupt:
            sock.close()
