"""Seeded REPRO603: a request site that never dispatches REPLY_STALE.

``request_narrow`` fires a ``WizardRequest`` and handles only
``REPLY_NAK`` — but the declared wizard exchange answers with one of
OK/NAK/STALE, and a staleness-unaware client would treat a stale
replica's placement as fresh.  ``request_complete`` is the clean twin
(``REPLY_OK`` is the declared fall-through, so comparing NAK and STALE
is complete), and ``request_delegated`` proves closure-awareness: its
reply dispatch lives in a helper.
"""

REPLY_OK = 0
REPLY_NAK = 1
REPLY_STALE = 2


def request_narrow(wire, seq):
    request = WizardRequest(seq=seq, server_num=1)
    wire.put(request)
    reply = wire.get()
    if reply.status == REPLY_NAK:
        return None
    return reply.servers


def request_complete(wire, seq):
    request = WizardRequest(seq=seq, server_num=1)
    wire.put(request)
    reply = wire.get()
    if reply.status == REPLY_STALE:
        return request_complete(wire, seq + 1)
    if reply.status == REPLY_NAK:
        return None
    return reply.servers


def request_delegated(wire, seq):
    request = WizardRequest(seq=seq, server_num=1)
    wire.put(request)
    return dispatch(wire.get())


def dispatch(reply):
    if reply.status in (REPLY_NAK, REPLY_STALE):
        return None
    return reply.servers
