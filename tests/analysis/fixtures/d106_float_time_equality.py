"""Seeded REPRO106 violation: exact float equality on event times."""


def is_due(sim, deadline: float) -> bool:
    return sim.now == deadline
