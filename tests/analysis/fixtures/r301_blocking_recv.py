"""Seeded REPRO301 violation: an unguarded blocking receive."""

from repro.sim import Interrupt


def fetch_forever(conn):
    while True:
        msg, _ = yield conn.recv()
        if msg is None:
            return


def fetch_guarded(conn):
    """Negative case: the enclosing Interrupt handler satisfies the rule."""
    try:
        while True:
            msg, _ = yield conn.recv()
            if msg is None:
                return
    except Interrupt:
        return
