"""Seeded REPRO105 violation: set iteration feeding the event queue."""


def fan_out(sim, delays):
    for delay in set(delays):
        sim.timeout(delay)
