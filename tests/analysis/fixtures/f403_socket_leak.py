"""Seeded REPRO403: a locally-acquired socket that leaks on every path.

``fire_and_forget``'s socket neither escapes the function nor is ever
closed — a guaranteed handle leak.  ``fire_and_close`` is the clean
twin.
"""

PROBE_PORT = 7007


def fire_and_forget(stack, payload):
    sock = stack.udp_socket()
    sock.sendto("collector", PROBE_PORT, payload=payload)
    return None


def fire_and_close(stack, payload):
    sock = stack.udp_socket()
    sock.sendto("collector", PROBE_PORT, payload=payload)
    sock.close()
    return None
