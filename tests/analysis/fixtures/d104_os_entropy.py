"""Seeded REPRO104 violation: OS entropy no seed can replay."""

import os
import uuid


def session_token() -> bytes:
    return os.urandom(8)


def session_id() -> str:
    return str(uuid.uuid4())
