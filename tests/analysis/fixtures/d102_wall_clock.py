"""Seeded REPRO102 violation: reading the wall clock in simulated code."""

import time


def stamp() -> float:
    return time.time()
