"""Seeded REPRO600: use-after-close and double-close on a UdpSocket.

``probe_then_reuse`` closes its socket on every path and then calls
``sendto`` again; ``probe_twice_closed`` closes twice.  Both ops are
invalid from the machine's terminal state on *every* path, which is
the S-series bar — ``probe_clean`` is the clean twin, and
``probe_branch_close`` proves the may-close join (only one branch
closed) stays silent.
"""

COLLECTOR_PORT = 7007


def probe_then_reuse(stack, payload):
    sock = stack.udp_socket()
    sock.sendto("collector", COLLECTOR_PORT, payload=payload)
    sock.close()
    sock.sendto("collector", COLLECTOR_PORT, payload=payload)


def probe_twice_closed(stack, payload):
    sock = stack.udp_socket()
    sock.sendto("collector", COLLECTOR_PORT, payload=payload)
    sock.close()
    sock.close()


def probe_clean(stack, payload):
    sock = stack.udp_socket()
    sock.sendto("collector", COLLECTOR_PORT, payload=payload)
    sock.close()


def probe_branch_close(stack, payload, eager):
    sock = stack.udp_socket()
    if eager:
        sock.close()
    sock.sendto("collector", COLLECTOR_PORT, payload=payload)
    sock.close()
