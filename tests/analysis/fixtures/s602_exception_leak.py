"""Seeded REPRO602: a socket released on the happy path but leaked on
the exception path.

``fetch_leaky`` closes its socket after a successful receive, but the
``except Interrupt`` escape returns without releasing it — exactly the
PR 4 getter-leak shape, now caught as a typestate violation.
``fetch_clean`` is the clean twin (``finally`` covers every exit), and
``fire_and_forget`` proves that a handle with *no* release anywhere
stays out of REPRO602's scope (that is flow's REPRO403 territory).
"""

COLLECTOR_PORT = 7007


def fetch_leaky(stack, payload):
    sock = stack.udp_socket()
    sock.sendto("collector", COLLECTOR_PORT, payload=payload)
    try:
        reply = yield sock.recv()
    except Interrupt:
        return None
    sock.close()
    return reply


def fetch_clean(stack, payload):
    sock = stack.udp_socket()
    try:
        sock.sendto("collector", COLLECTOR_PORT, payload=payload)
        reply = yield sock.recv()
    finally:
        sock.close()
    return reply


def fire_and_forget(stack, payload):
    sock = stack.udp_socket()
    sock.sendto("collector", COLLECTOR_PORT, payload=payload)
