"""Seeded REPRO103 violation: calendar clock inside the simulation."""

from datetime import datetime


def record_started_at() -> str:
    return datetime.now().isoformat()
