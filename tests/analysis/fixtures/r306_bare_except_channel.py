"""Seeded REPRO306 violation: a bare except swallowing channel errors."""


def shield(conn):
    try:
        conn.send(b"ping", 4)
    except:  # noqa: E722
        pass


def shield_specific(conn):
    """Negative case: a typed handler around channel ops is fine."""
    try:
        conn.send(b"ping", 4)
    except ValueError:
        pass
