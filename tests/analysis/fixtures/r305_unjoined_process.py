"""Seeded REPRO305 violation: a spawned process whose handle is dropped."""


def spawn_and_forget(sim, job):
    sim.process(job)


def spawn_and_keep(sim, job):
    """Negative case: keeping the handle satisfies the rule."""
    return sim.process(job)
