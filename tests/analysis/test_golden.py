"""Golden-file tests for ``repro check``: exact REPROxxx output.

Each ``fixtures/<name>.py`` seeds exactly one rule's violation (plus
``clean_noqa_suppressed``/``clean_r_noqa`` cases proving the suppression
path) and pins the analyzer's byte-exact output in
``fixtures/<name>.expected`` — the same pattern
:mod:`tests.lang.test_golden` uses for the requirement-language analyzer.

``r300_seeded_race`` is special: its ``.expected`` pins the output of the
*dynamic* happens-before detector (``repro check --sanitize <file>``);
statically the file is clean, which is the point — only the runtime
detector can see that race.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.cli import _display_path, check_main
from repro.analysis.engine import ANALYZER_CODES

REPO = Path(__file__).parent.parent.parent
FIXTURES = Path(__file__).parent / "fixtures"
CASES = sorted(p.stem for p in FIXTURES.glob("*.py"))

#: fixtures whose worst finding is only a warning (exit 0 by default)
WARNING_ONLY = {"d106_float_time_equality", "r305_unjoined_process"}
CLEAN = {"clean_noqa_suppressed", "clean_r_noqa"}
#: fixtures exercised with ``--sanitize`` (dynamic scenario, not static)
SANITIZE = {"r300_seeded_race"}
#: fixtures exercised with ``--flow`` (whole-program F-series analyses)
FLOW = {
    "f400_registry_drift",
    "f401_recv_deadlock",
    "f402_store_getter_leak",
    "f403_socket_leak",
    "f404_unguarded_client_wait",
}
#: fixtures exercised with ``--perf`` (whole-program H-series analyses)
PERF = {
    "h500_db_scan",
    "h501_db_copy",
    "h502_loop_construction",
    "h503_invariant_recompute",
    "h504_dispatch_blocking",
    "h505_quadratic_growth",
}
#: fixtures exercised with ``--proto`` (whole-program S-series analyses)
PROTO = {
    "s600_use_after_close",
    "s601_send_before_permit",
    "s602_exception_leak",
    "s603_missing_reply",
    "s604_reopen_forbidden",
    "s605_spawn_conflict",
    "s606_machine_drift",
}


def run_check(path: Path, capsys, *extra: str) -> tuple[int, str]:
    code = check_main([str(path), *extra])
    out = capsys.readouterr().out
    # expected files are recorded with repo-relative paths; replace
    # whatever the CLI rendered for this cwd with that stable form
    shown = _display_path(path)
    rel = path.relative_to(REPO).as_posix()
    return code, out.replace(shown, rel)


def run_sanitize(path: Path, capsys) -> tuple[int, str]:
    # sanitize output renders file basenames only, so it is already
    # cwd-independent — no path normalisation needed
    code = check_main(["--sanitize", str(path)])
    return code, capsys.readouterr().out


@pytest.mark.parametrize("name", [n for n in CASES
                                  if n not in SANITIZE | FLOW | PERF | PROTO])
def test_golden_output_is_exact(name, capsys):
    expected = (FIXTURES / f"{name}.expected").read_text()
    _, out = run_check(FIXTURES / f"{name}.py", capsys)
    assert out == expected


@pytest.mark.parametrize(
    "name",
    [n for n in CASES
     if n not in WARNING_ONLY | CLEAN | SANITIZE | FLOW | PERF | PROTO])
def test_error_fixtures_exit_one(name, capsys):
    code, _ = run_check(FIXTURES / f"{name}.py", capsys)
    assert code == 1


@pytest.mark.parametrize("name", sorted(FLOW))
def test_flow_golden_output_is_exact(name, capsys):
    """Each F-series fixture's ``--flow`` output, byte-for-byte."""
    expected = (FIXTURES / f"{name}.expected").read_text()
    code, out = run_check(FIXTURES / f"{name}.py", capsys, "--flow")
    assert code == 1
    assert out == expected


@pytest.mark.parametrize("name", sorted(PERF))
def test_perf_golden_output_is_exact(name, capsys):
    """Each H-series fixture's ``--perf`` output, byte-for-byte (the
    clean twin in every fixture proves the fixed shape stays silent)."""
    expected = (FIXTURES / f"{name}.expected").read_text()
    code, out = run_check(FIXTURES / f"{name}.py", capsys, "--perf")
    assert code == 1
    assert out == expected


@pytest.mark.parametrize("name", sorted(PROTO))
def test_proto_golden_output_is_exact(name, capsys):
    """Each S-series fixture's ``--proto`` output, byte-for-byte (the
    clean twin in every fixture proves the conforming shape stays
    silent)."""
    expected = (FIXTURES / f"{name}.expected").read_text()
    code, out = run_check(FIXTURES / f"{name}.py", capsys, "--proto")
    assert code == 1
    assert out == expected


@pytest.mark.parametrize("name", sorted(WARNING_ONLY))
def test_warning_fixture_gates_only_under_strict(name, capsys):
    code, _ = run_check(FIXTURES / f"{name}.py", capsys)
    assert code == 0
    code, _ = run_check(FIXTURES / f"{name}.py", capsys, "--strict")
    assert code == 1


@pytest.mark.parametrize("name,suppressed", [
    ("clean_noqa_suppressed", 1),
    ("clean_r_noqa", 6),
])
def test_noqa_fixtures_are_clean_but_counted(name, suppressed, capsys):
    code, out = run_check(FIXTURES / f"{name}.py", capsys)
    assert code == 0
    assert f"{suppressed} suppressed by noqa" in out


def test_seeded_race_fixture_is_statically_clean(capsys):
    """The dynamic-race scenario slips past every static rule."""
    code, out = run_check(FIXTURES / "r300_seeded_race.py", capsys)
    assert code == 0
    assert "file(s) clean" in out


def test_seeded_race_detected_dynamically(capsys):
    """``--sanitize`` on the scenario flags the race, byte-for-byte."""
    expected = (FIXTURES / "r300_seeded_race.expected").read_text()
    code, out = run_sanitize(FIXTURES / "r300_seeded_race.py", capsys)
    assert code == 1
    assert out == expected
    assert "REPRO300" in out


def test_fixture_tree_exits_one(capsys):
    code = check_main([str(FIXTURES)])
    capsys.readouterr()
    assert code == 1


def test_repo_source_tree_is_clean(capsys):
    """The gate the CI job runs: the repo's own code passes its analyzer."""
    code = check_main([str(REPO / "src")])
    out = capsys.readouterr().out
    assert code == 0
    assert "file(s) clean" in out


def test_repo_source_tree_is_flow_clean(capsys):
    """The whole-program gate: zero F-series findings on the shipped
    tree, with the full wire-tag surface verified against the registry."""
    code = check_main(["--flow", str(REPO / "src" / "repro")])
    out = capsys.readouterr().out
    assert code == 0
    assert "flow-clean (5 F rules)" in out
    assert "7 wire tag(s)" in out


def test_repo_source_tree_is_perf_clean(capsys):
    """The hot-path gate: zero H-series findings on the shipped tree
    (every real finding fixed, the justified copies noqa'd)."""
    code = check_main(["--perf", str(REPO / "src" / "repro")])
    out = capsys.readouterr().out
    assert code == 0
    assert "perf-clean (6 H rules" in out


def test_repo_source_tree_is_proto_clean(capsys):
    """The typestate gate: zero S-series findings on the shipped tree,
    with every declared machine literal verified against the registry."""
    code = check_main(["--proto", str(REPO / "src" / "repro")])
    out = capsys.readouterr().out
    assert code == 0
    assert "proto-clean (7 S rules)" in out
    assert "6 machine declaration(s)" in out


def test_repo_source_tree_passes_all_gates(capsys):
    """``--all`` runs per-file D/P/R + --flow + --perf + --proto in one
    process."""
    code = check_main(["--all", str(REPO / "src" / "repro")])
    out = capsys.readouterr().out
    assert code == 0
    assert "file(s) clean" in out
    assert "flow-clean" in out
    assert "perf-clean" in out
    assert "proto-clean" in out


def test_fixtures_pin_every_advertised_code():
    """Every REPROxxx code in the table is exercised by a golden file."""
    text = "\n".join(p.read_text() for p in FIXTURES.glob("*.expected"))
    for code in ANALYZER_CODES:
        assert code in text, f"{code} not exercised by golden fixtures"
    # the dynamic-only race code is pinned by the sanitize golden
    assert "REPRO300" in text
