"""``# repro: noqa[CODE]`` suppression across every rule series.

One parametrized suite proving the suppression contract is uniform:
a targeted code silences exactly that finding on that line, a bare
``noqa`` silences everything on the line, a wrong code silences
nothing — for D-series (determinism), P-series (protocol), R-series
(concurrency), F-series (whole-program ``--flow``), H-series (hot-path
``--perf``) and S-series (typestate ``--proto``) alike, plus
multi-code lines carrying findings from two different series.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import check_source
from repro.analysis.flow import run_flow
from repro.analysis.hotpath import run_hotpath
from repro.analysis.typestate import run_typestate

#: (series, code, template) — ``{noqa}`` is replaced per scenario and
#: sits on the line that violates the rule
SEED_CASES = [
    ("D", "REPRO102",
     "import time\n\n"
     "def stamp():\n"
     "    return time.time(){noqa}\n"),
    ("P", "REPRO201",
     "MSG_PULL = 0{noqa}\n"),
    ("R", "REPRO301",
     "def fetch(conn):\n"
     "    msg, _ = yield conn.recv(){noqa}\n"
     "    return msg\n"),
    ("F", "REPRO403",
     "def start(stack):\n"
     "    sock = stack.udp_socket(){noqa}\n"
     "    sock.sendto('x', 9, payload=b'x')\n"),
    ("H", "REPRO504",
     "def attach(sim, tap):\n"
     "    sim.add_callback(on_event)\n\n"
     "def on_event(event):\n"
     "    while True:{noqa}\n"
     "        pass\n"),
    ("S", "REPRO600",
     "def probe(stack):\n"
     "    sock = stack.udp_socket()\n"
     "    sock.close()\n"
     "    sock.sendto('x', 9, payload=b'x'){noqa}\n"),
]


def run_series(series: str, source: str, tmp_path: Path):
    """(codes, suppressed) for one source under the right analyzer."""
    if series == "F":
        target = tmp_path / "mod.py"
        target.write_text(source, encoding="utf-8")
        report = run_flow([target])
        return [d.code for _, d in report.findings], report.suppressed
    if series == "H":
        target = tmp_path / "mod.py"
        target.write_text(source, encoding="utf-8")
        hot_report = run_hotpath([target])
        return ([f.diag.code for f in hot_report.findings],
                hot_report.suppressed)
    if series == "S":
        target = tmp_path / "mod.py"
        target.write_text(source, encoding="utf-8")
        proto_report = run_typestate([target])
        return ([d.code for _, d in proto_report.findings],
                proto_report.suppressed)
    file_report = check_source(source, tmp_path / "mod.py")
    return [d.code for d in file_report.diagnostics], file_report.suppressed


@pytest.mark.parametrize("series,code,template", SEED_CASES)
class TestPerSeries:
    def test_unsuppressed_finding_fires(self, series, code, template,
                                        tmp_path):
        codes, suppressed = run_series(
            series, template.format(noqa=""), tmp_path)
        assert codes == [code]
        assert suppressed == 0

    def test_targeted_noqa_suppresses(self, series, code, template,
                                      tmp_path):
        codes, suppressed = run_series(
            series, template.format(noqa=f"  # repro: noqa[{code}]"),
            tmp_path)
        assert codes == []
        assert suppressed == 1

    def test_bare_noqa_suppresses(self, series, code, template, tmp_path):
        codes, suppressed = run_series(
            series, template.format(noqa="  # repro: noqa"), tmp_path)
        assert codes == []
        assert suppressed == 1

    def test_wrong_code_does_not_suppress(self, series, code, template,
                                          tmp_path):
        codes, suppressed = run_series(
            series, template.format(noqa="  # repro: noqa[REPRO999]"),
            tmp_path)
        assert codes == [code]
        assert suppressed == 0

    def test_multi_code_list_including_ours_suppresses(self, series, code,
                                                       template, tmp_path):
        codes, suppressed = run_series(
            series,
            template.format(noqa=f"  # repro: noqa[{code}, REPRO999]"),
            tmp_path)
        assert codes == []
        assert suppressed == 1


class TestMultiCodeLines:
    #: line 3 violates two different rules at once: bare random
    #: (REPRO101) and wall clock (REPRO102); the import line carries its
    #: own suppression so only line 3 is under test
    TWO_CODES = ("import random, time  # repro: noqa[REPRO101]\n\n"
                 "x = (random.random(), time.time()){noqa}\n")

    def test_both_codes_fire_without_noqa(self, tmp_path):
        codes, suppressed = run_series(
            "D", self.TWO_CODES.format(noqa=""), tmp_path)
        assert sorted(codes) == ["REPRO101", "REPRO102"]
        assert suppressed == 1  # the import-line noqa

    def test_multi_code_noqa_silences_both(self, tmp_path):
        codes, suppressed = run_series(
            "D",
            self.TWO_CODES.format(noqa="  # repro: noqa[REPRO102, REPRO101]"),
            tmp_path)
        assert codes == []
        assert suppressed == 3

    def test_partial_noqa_silences_only_named_code(self, tmp_path):
        codes, suppressed = run_series(
            "D", self.TWO_CODES.format(noqa="  # repro: noqa[REPRO102]"),
            tmp_path)
        assert codes == ["REPRO101"]
        assert suppressed == 2

    def test_bare_noqa_silences_both(self, tmp_path):
        codes, suppressed = run_series(
            "D", self.TWO_CODES.format(noqa="  # repro: noqa"), tmp_path)
        assert codes == []
        assert suppressed == 3
