"""Unit tests for the typestate walker (S-series REPRO6xx).

The golden fixtures pin end-to-end output; these tests exercise the
analysis semantics on small synthetic trees: state merging at join
points, exception-edge handling, interprocedural summary conservatism,
and the determinism of the report surface.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.cli import check_main
from repro.analysis.typestate import MACHINES, run_typestate
from repro.analysis.typestate.machines import EXCHANGES

REPO = Path(__file__).parent.parent.parent
SRC = REPO / "src" / "repro"


def analyze(tmp_path: Path, **files: str):
    for name, source in files.items():
        (tmp_path / f"{name}.py").write_text(source, encoding="utf-8")
    return run_typestate([tmp_path])


def codes(report) -> list[str]:
    return [diag.code for _, diag in report.findings]


class TestRegistry:
    def test_every_machine_transition_stays_inside_its_states(self):
        for machine in MACHINES.values():
            states = set(machine.states)
            assert machine.initial in states
            assert set(machine.final) <= states
            assert set(machine.released) <= states
            for (src, _op), dst in machine.transitions.items():
                assert src in states and dst in states

    def test_exchange_default_is_a_declared_reply(self):
        for exchange in EXCHANGES.values():
            assert exchange.default in exchange.replies


class TestJoinPoints:
    def test_close_in_one_branch_keeps_use_silent(self, tmp_path):
        """May-use-after-close is not a definite error: the merged
        state set still contains a live state."""
        report = analyze(tmp_path, mod=(
            "def probe(stack, eager):\n"
            "    sock = stack.udp_socket()\n"
            "    if eager:\n"
            "        sock.close()\n"
            "    sock.sendto('x', 9, payload=b'x')\n"
            "    sock.close()\n"))
        assert codes(report) == []

    def test_close_in_both_branches_flags_use(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def probe(stack, eager):\n"
            "    sock = stack.udp_socket()\n"
            "    if eager:\n"
            "        sock.close()\n"
            "    else:\n"
            "        sock.close()\n"
            "    sock.sendto('x', 9, payload=b'x')\n"))
        assert codes(report) == ["REPRO600"]

    def test_loop_body_states_join_with_entry(self, tmp_path):
        """Zero-or-one-iteration abstraction: a close inside the loop
        widens the post-loop set instead of forcing *closed*."""
        report = analyze(tmp_path, mod=(
            "def probe(stack, jobs):\n"
            "    sock = stack.udp_socket()\n"
            "    for job in jobs:\n"
            "        if job.last:\n"
            "            sock.close()\n"
            "    sock.sendto('x', 9, payload=b'x')\n"
            "    sock.close()\n"))
        assert codes(report) == []


class TestExceptionEdges:
    def test_leak_on_handler_return_is_flagged(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def fetch(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    try:\n"
            "        reply = yield sock.recv()\n"
            "    except Interrupt:\n"
            "        return None\n"
            "    sock.close()\n"
            "    return reply\n"))
        assert codes(report) == ["REPRO602"]
        assert "Interrupt" in report.findings[0][1].message

    def test_finally_release_covers_inner_exits(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def fetch(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    try:\n"
            "        reply = yield sock.recv()\n"
            "        if reply is None:\n"
            "            raise ValueError('empty')\n"
            "        return reply\n"
            "    finally:\n"
            "        sock.close()\n"))
        assert codes(report) == []

    def test_raise_on_validation_path_is_an_exception_exit(self, tmp_path):
        """A plain raise (no try) after acquiring is an exceptional
        exit; with a release proven elsewhere it is a leak."""
        report = analyze(tmp_path, mod=(
            "def fetch(stack, limit):\n"
            "    sock = stack.udp_socket()\n"
            "    if limit <= 0:\n"
            "        raise ValueError('bad limit')\n"
            "    sock.close()\n"))
        assert codes(report) == ["REPRO602"]

    def test_never_released_handle_is_not_repro602(self, tmp_path):
        """No release anywhere means no proven intent — that shape is
        flow's REPRO403, not a typestate exception-path leak."""
        report = analyze(tmp_path, mod=(
            "def fetch(stack, limit):\n"
            "    sock = stack.udp_socket()\n"
            "    if limit <= 0:\n"
            "        raise ValueError('bad limit')\n"
            "    sock.sendto('x', 9, payload=b'x')\n"))
        assert codes(report) == []

    def test_handler_that_releases_is_clean(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def fetch(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    try:\n"
            "        reply = yield sock.recv()\n"
            "    except Interrupt:\n"
            "        sock.close()\n"
            "        return None\n"
            "    sock.close()\n"
            "    return reply\n"))
        assert codes(report) == []


class TestInterproceduralSummaries:
    def test_oblivious_helper_preserves_state(self, tmp_path):
        """A callee that never touches the machine's ops must not end
        tracking — the double close after it is still definite."""
        report = analyze(tmp_path, mod=(
            "def audit(sock):\n"
            "    label = sock.port\n"
            "    return label\n"
            "def probe(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    audit(sock)\n"
            "    sock.close()\n"
            "    sock.close()\n"))
        assert codes(report) == ["REPRO600"]

    def test_unconditional_single_op_helper_is_applied(self, tmp_path):
        """A helper that always closes transitions the caller's state,
        so the use after the call is a definite use-after-close."""
        report = analyze(tmp_path, mod=(
            "def finish(sock):\n"
            "    sock.close()\n"
            "def probe(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    finish(sock)\n"
            "    sock.sendto('x', 9, payload=b'x')\n"))
        assert codes(report) == ["REPRO600"]

    def test_conditional_helper_ends_tracking_conservatively(self, tmp_path):
        """May-close (close under an if) is ambiguous: tracking stops,
        no finding either way."""
        report = analyze(tmp_path, mod=(
            "def finish(sock, really):\n"
            "    if really:\n"
            "        sock.close()\n"
            "def probe(stack, really):\n"
            "    sock = stack.udp_socket()\n"
            "    finish(sock, really)\n"
            "    sock.sendto('x', 9, payload=b'x')\n"))
        assert codes(report) == []

    def test_undriven_generator_summary_is_not_applied(self, tmp_path):
        """Calling a generator does not run its body: binding it without
        ``yield from`` must not apply the callee's close."""
        report = analyze(tmp_path, mod=(
            "def finish(sock):\n"
            "    yield sock.recv()\n"
            "    sock.close()\n"
            "def probe(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    gen = finish(sock)\n"
            "    sock.sendto('x', 9, payload=b'x')\n"))
        assert codes(report) == []

    def test_unresolvable_call_escapes(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def probe(stack, registry):\n"
            "    sock = stack.udp_socket()\n"
            "    registry.adopt(sock)\n"
            "    sock.close()\n"
            "    sock.close()\n"))
        assert codes(report) == []


class TestEscapes:
    def test_container_store_ends_tracking(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def probe(stack, pool):\n"
            "    sock = stack.udp_socket()\n"
            "    pool.append([sock])\n"
            "    sock.close()\n"
            "    sock.close()\n"))
        assert codes(report) == []

    def test_exits_before_escape_still_witness_leaks(self, tmp_path):
        """Escape later in the function does not launder a leak on an
        exception path recorded before it — at that exit nothing else
        owned the handle yet."""
        report = analyze(tmp_path, mod=(
            "def fetch(stack, pool):\n"
            "    sock = stack.udp_socket()\n"
            "    try:\n"
            "        reply = yield sock.recv()\n"
            "    except Interrupt:\n"
            "        return None\n"
            "    sock.close()\n"
            "    pool.append(sock)\n"
            "    return reply\n"))
        assert codes(report) == ["REPRO602"]


class TestDeterminism:
    def test_report_is_stable_across_runs(self, tmp_path):
        source = (
            "def a(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    sock.close()\n"
            "    sock.close()\n"
            "def b(stack):\n"
            "    conn = stack.tcp.connect('h', 9)\n"
            "    conn.send(b'x', 8)\n")
        (tmp_path / "mod.py").write_text(source, encoding="utf-8")
        first = run_typestate([tmp_path])
        second = run_typestate([tmp_path])
        render = lambda r: [(u.posix, d.render(u.posix))  # noqa: E731
                            for u, d in r.findings]
        assert render(first) == render(second)
        assert codes(first) == ["REPRO600", "REPRO601"]

    def test_cli_double_run_is_byte_identical(self, capsys):
        code_a = check_main(["--proto", str(SRC)])
        out_a = capsys.readouterr().out
        code_b = check_main(["--proto", str(SRC)])
        out_b = capsys.readouterr().out
        assert (code_a, out_a) == (code_b, out_b)
        assert code_a == 0


class TestDrift:
    def test_unknown_machine_declaration_is_flagged(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "CARRIER_PIGEON_MACHINE = {\n"
            "    'name': 'CarrierPigeon',\n"
            "    'initial': 'perched',\n"
            "    'states': ('perched', 'flying'),\n"
            "    'final': (),\n"
            "    'transitions': {'perched.launch': 'flying'},\n"
            "}\n"))
        assert codes(report) == ["REPRO606"]
        assert "unknown to the analyzer registry" in \
            report.findings[0][1].message

    def test_exchange_vs_registry_reply_drift_is_flagged(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "MSG_PING = 1\n"
            "REPLY_OK = 0\n"
            "REPLY_RETRY = 9\n"
            "WIRE_TAG_HANDLERS = {\n"
            "    'MSG_PING': ('mod.handle',),\n"
            "    'REPLY_OK': ('mod.handle',),\n"
            "    'REPLY_RETRY': ('mod.handle',),\n"
            "}\n"
            "def handle(msg):\n"
            "    return msg\n"))
        assert codes(report) == ["REPRO606"]
        assert "drifted apart" in report.findings[0][1].message
