"""Unit tests for the whole-program flow analyzer (F-series REPRO4xx).

The golden fixtures pin end-to-end output; these tests exercise the
pieces — symbol table, tag propagation, wait-for graph, lifecycle
checks — on small synthetic trees, plus the determinism and export
guarantees of the CLI surface.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import check_main
from repro.analysis.flow import run_flow
from repro.analysis.flow.symbols import module_name_for

REPO = Path(__file__).parent.parent.parent
SRC = REPO / "src" / "repro"


def analyze(tmp_path: Path, **files: str):
    for name, source in files.items():
        (tmp_path / f"{name}.py").write_text(source, encoding="utf-8")
    return run_flow([tmp_path])


def codes(report) -> list[str]:
    return [diag.code for _, diag in report.findings]


class TestSymbols:
    def test_module_name_from_repro_tree(self):
        assert module_name_for(
            Path("src/repro/core/records.py")) == "repro.core.records"
        assert module_name_for(
            Path("src/repro/analysis/__init__.py")) == "repro.analysis"

    def test_module_name_outside_repro_tree_is_stem(self):
        assert module_name_for(
            Path("tests/analysis/fixtures/f401_recv_deadlock.py")
        ) == "f401_recv_deadlock"

    def test_registry_and_tags_indexed(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "MSG_A = 1\n"
            "WIRE_TAG_HANDLERS = {'MSG_A': ('mod.handle',)}\n"
            "def handle(msg):\n"
            "    return msg\n"
            "def send(conn):\n"
            "    conn.send(MSG_A, 8)\n"))
        assert report.findings == []
        assert report.table is not None
        assert report.table.tags == {"MSG_A": 1}
        assert [r.tags for r in report.table.registries] == [("MSG_A",)]


class TestTagPropagation:
    def test_tag_flows_through_constructor_and_param(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "MSG_A = 1\n"
            "WIRE_TAG_HANDLERS = {'MSG_A': ('mod.handle',)}\n"
            "def handle(msg):\n"
            "    return msg\n"
            "class Msg:\n"
            "    def __init__(self, kind, size):\n"
            "        self.kind = kind\n"
            "def build():\n"
            "    return Msg(MSG_A, 8)\n"
            "def push(conn, msg):\n"
            "    conn.send(msg, 8)\n"
            "def main(conn):\n"
            "    push(conn, build())\n"))
        assert report.findings == []
        assert report.analysis is not None
        assert report.analysis.sent_tags() == frozenset({"MSG_A"})

    def test_dataclass_default_tag_counts_as_sent(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "REPLY_OK = 0\n"
            "WIRE_TAG_HANDLERS = {'REPLY_OK': ('mod.on_ok',)}\n"
            "def on_ok(msg):\n"
            "    return msg\n"
            "class Reply:\n"
            "    seq: int = 0\n"
            "    status: int = REPLY_OK\n"
            "def answer(sock, addr, port, seq):\n"
            "    reply = Reply(seq=seq)\n"
            "    sock.sendto(addr, port, payload=reply)\n"))
        assert report.findings == []
        assert report.analysis is not None
        assert report.analysis.sent_tags() == frozenset({"REPLY_OK"})

    def test_unsent_registered_tag_is_drift(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "MSG_A = 1\n"
            "WIRE_TAG_HANDLERS = {'MSG_A': ('mod.handle',)}\n"
            "def handle(msg):\n"
            "    return msg\n"))
        assert codes(report) == ["REPRO400"]
        assert "no statically discoverable send site" in \
            report.findings[0][1].message

    def test_no_registry_skips_repro400(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "MSG_A = 1\n"
            "def send(conn):\n"
            "    conn.send(MSG_A, 8)\n"))
        assert report.findings == []


class TestDeadlock:
    DAEMON = (
        "from repro.sim import Interrupt\n"
        "PORT_A = 5001\n"
        "PORT_B = 5002\n"
        "class {name}:\n"
        "    def __init__(self, stack):\n"
        "        self.stack = stack\n"
        "    def run(self):\n"
        "        sock = self.stack.udp_socket({mine})\n"
        "        try:\n"
        "            while True:\n"
        "                dgram = yield sock.recv()\n"
        "                sock.sendto(dgram.src, {peer}, payload=b'x')\n"
        "        except Interrupt:\n"
        "            sock.close()\n")

    def test_mutual_recv_cycle_detected(self, tmp_path):
        report = analyze(
            tmp_path,
            a=self.DAEMON.format(name="A", mine="PORT_A", peer="PORT_B"),
            b=self.DAEMON.format(name="B", mine="PORT_B", peer="PORT_A"))
        assert codes(report) == ["REPRO401"]
        assert "a.A.run" in report.findings[0][1].message
        assert "b.B.run" in report.findings[0][1].message

    def test_timeout_on_one_edge_breaks_the_cycle(self, tmp_path):
        timed = (
            "from repro.sim import Interrupt\n"
            "PORT_A = 5001\n"
            "PORT_B = 5002\n"
            "class A:\n"
            "    def __init__(self, stack, sim):\n"
            "        self.stack = stack\n"
            "        self.sim = sim\n"
            "    def run(self):\n"
            "        sock = self.stack.udp_socket(PORT_A)\n"
            "        try:\n"
            "            while True:\n"
            "                get = sock.recv()\n"
            "                deadline = self.sim.timeout(1.0)\n"
            "                fired = yield self.sim.any_of([get, deadline])\n"
            "                if get not in fired:\n"
            "                    sock.rx.cancel(get)\n"
            "                    continue\n"
            "                sock.sendto('b', PORT_B, payload=b'x')\n"
            "        except Interrupt:\n"
            "            sock.close()\n")
        report = analyze(
            tmp_path, a=timed,
            b=self.DAEMON.format(name="B", mine="PORT_B", peer="PORT_A"))
        assert codes(report) == []

    def test_self_loop_is_a_cycle(self, tmp_path):
        report = analyze(tmp_path, a=(
            "from repro.sim import Interrupt\n"
            "PORT = 5001\n"
            "class Echo:\n"
            "    def __init__(self, stack):\n"
            "        self.stack = stack\n"
            "    def run(self):\n"
            "        sock = self.stack.udp_socket(PORT)\n"
            "        try:\n"
            "            while True:\n"
            "                dgram = yield sock.recv()\n"
            "                sock.sendto(dgram.src, PORT, payload=b'x')\n"
            "        except Interrupt:\n"
            "            sock.close()\n"))
        assert codes(report) == ["REPRO401"]

    def test_unconditional_sender_feeds_the_waiter(self, tmp_path):
        """A sender whose send is *not* gated on its own wait breaks the
        cycle — that is exactly how the shipped push loop stays clean."""
        report = analyze(
            tmp_path,
            a=self.DAEMON.format(name="A", mine="PORT_A", peer="PORT_B"),
            b=("PORT_A = 5001\n"
               "def feeder(stack):\n"
               "    sock = stack.udp_socket()\n"
               "    while True:\n"
               "        sock.sendto('a', PORT_A, payload=b'x')\n"
               "        yield\n"))
        assert codes(report) == ["REPRO403"]  # feeder leaks its socket


class TestLifecycle:
    def test_owner_release_clears_getter_race(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def pull(conn, sim):\n"
            "    get = conn.recv()\n"
            "    deadline = sim.timeout(1.0)\n"
            "    fired = yield sim.any_of([get, deadline])\n"
            "    if get not in fired:\n"
            "        conn.abort()\n"
            "    return fired\n"))
        assert codes(report) == []

    def test_registry_removal_clears_getter_race(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def probe(stack, sim):\n"
            "    tap = stack.icmp_tap()\n"
            "    get = tap.get()\n"
            "    deadline = sim.timeout(1.0)\n"
            "    fired = yield sim.any_of([get, deadline])\n"
            "    stack.icmp_taps.remove(tap)\n"
            "    return fired\n"))
        assert codes(report) == []

    def test_anonymous_inline_getter_is_flagged(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def pull(conn, sim):\n"
            "    fired = yield sim.any_of([conn.recv(), sim.timeout(1.0)])\n"
            "    return fired\n"))
        assert codes(report) == ["REPRO402"]
        assert "anonymous" in report.findings[0][1].message

    def test_escaping_handle_is_not_a_leak(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def start(stack, sim, listen):\n"
            "    sock = stack.udp_socket()\n"
            "    sim.process(listen(sock))\n"))
        assert codes(report) == []

    def test_unreleased_local_handle_is_a_leak(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def start(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    sock.sendto('x', 9, payload=b'x')\n"))
        assert codes(report) == ["REPRO403"]


class TestClientPath:
    def test_untimed_client_wait_flagged(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def client_ask(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    reply = yield sock.recv()\n"
            "    sock.close()\n"
            "    return reply\n"))
        assert codes(report) == ["REPRO404"]

    def test_wait_behind_resolved_call_is_still_reachable(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def _inner(sock):\n"
            "    return (yield sock.recv())\n"
            "def client_ask(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    reply = yield from _inner(sock)\n"
            "    sock.close()\n"
            "    return reply\n"))
        assert codes(report) == ["REPRO404"]
        assert "client_ask" in report.findings[0][1].message

    def test_spawned_loop_is_not_on_the_request_path(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "from repro.sim import Interrupt\n"
            "def _loop(sock):\n"
            "    try:\n"
            "        while True:\n"
            "            yield sock.recv()\n"
            "    except Interrupt:\n"
            "        sock.close()\n"
            "def client_ask(stack, sim):\n"
            "    sock = stack.udp_socket()\n"
            "    sim.process(_loop(sock))\n"
            "    return sock\n"))
        assert codes(report) == []

    def test_interrupt_guard_satisfies_the_rule(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "from repro.sim import Interrupt\n"
            "def client_ask(stack):\n"
            "    sock = stack.udp_socket()\n"
            "    try:\n"
            "        reply = yield sock.recv()\n"
            "    except Interrupt:\n"
            "        reply = None\n"
            "    sock.close()\n"
            "    return reply\n"))
        assert codes(report) == []


class TestNoqaSuppression:
    def test_flow_finding_suppressed_and_counted(self, tmp_path):
        report = analyze(tmp_path, mod=(
            "def start(stack):\n"
            "    sock = stack.udp_socket()  # repro: noqa[REPRO403]\n"
            "    sock.sendto('x', 9, payload=b'x')\n"))
        assert report.findings == []
        assert report.suppressed == 1
        assert report.exit_code == 0


class TestCliSurface:
    def test_repo_flow_output_is_byte_stable(self, capsys):
        check_main(["--flow", str(SRC)])
        first = capsys.readouterr().out
        check_main(["--flow", str(SRC)])
        second = capsys.readouterr().out
        assert first == second
        assert first.endswith("flow-clean (5 F rules)\n")

    def test_graph_exports_are_deterministic(self, tmp_path, capsys):
        out1 = tmp_path / "g1.json"
        out2 = tmp_path / "g2.json"
        dot1 = tmp_path / "g1.dot"
        dot2 = tmp_path / "g2.dot"
        check_main(["--flow", "--json", str(out1), "--dot", str(dot1),
                    str(SRC)])
        check_main(["--flow", "--json", str(out2), "--dot", str(dot2),
                    str(SRC)])
        capsys.readouterr()
        assert out1.read_bytes() == out2.read_bytes()
        assert dot1.read_bytes() == dot2.read_bytes()
        graph = json.loads(out1.read_text())
        assert sorted(graph["tags"]) == [
            "MSG_NETDB", "MSG_PULL", "MSG_SECDB", "MSG_SYSDB",
            "REPLY_NAK", "REPLY_OK", "REPLY_STALE"]
        assert all(slot["senders"] and slot["handlers"]
                   for slot in graph["tags"].values())

    def test_dot_without_flow_is_usage_error(self, tmp_path, capsys):
        assert check_main(["--dot", str(tmp_path / "g.dot"),
                           str(SRC)]) == 2
        assert "--dot/--json require --flow" in capsys.readouterr().err

    def test_parse_failure_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert check_main(["--flow", str(bad)]) == 1
        assert "error PARSE" in capsys.readouterr().out


@pytest.mark.parametrize("entry", ["request_servers", "smart_sockets",
                                   "smart_sessions", "failover"])
def test_shipped_client_entry_points_exist(entry):
    """The REPRO404 root set matches real client API names — if one is
    renamed, the rule must be retargeted, not silently uprooted."""
    sources = "\n".join(
        p.read_text(encoding="utf-8")
        for p in [SRC / "core" / "client.py", SRC / "core" / "session.py"])
    assert f"def {entry}" in sources
