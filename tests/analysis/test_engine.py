"""Unit tests for the analyzer engine: noqa, registry, CLI plumbing."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.cli import check_main
from repro.analysis.engine import (
    ANALYZER_CODES,
    Rule,
    all_rules,
    check_source,
    iter_python_files,
    rule,
)
from repro.lang.diagnostics import register_codes


class TestNoqa:
    def test_targeted_code_is_suppressed(self):
        src = "import time\n\nt = time.time()  # repro: noqa[REPRO102]\n"
        report = check_source(src, Path("x.py"))
        assert report.diagnostics == []
        assert report.suppressed == 1

    def test_bare_noqa_silences_every_code(self):
        src = "import random  # repro: noqa\n\nrandom.seed(1)\n"
        report = check_source(src, Path("x.py"))
        assert [d.line for d in report.diagnostics] == [3]
        assert report.suppressed == 1

    def test_comma_separated_codes(self):
        src = ("import os, uuid\n\n"
               "x = (os.urandom(4), uuid.uuid4())"
               "  # repro: noqa[REPRO104, REPRO101]\n")
        report = check_source(src, Path("x.py"))
        assert report.diagnostics == []
        assert report.suppressed == 2

    def test_wrong_code_does_not_suppress(self):
        src = "import time\n\nt = time.time()  # repro: noqa[REPRO101]\n"
        report = check_source(src, Path("x.py"))
        assert [d.code for d in report.diagnostics] == ["REPRO102"]
        assert report.suppressed == 0


class TestEngine:
    def test_parse_error_reported_not_raised(self):
        report = check_source("def broken(:\n", Path("x.py"))
        assert report.parse_error is not None
        assert report.parse_line == 1
        assert report.error_count == 1
        assert report.diagnostics == []

    def test_all_rules_cover_the_code_table(self):
        """Every non-F/non-H/non-S code has a per-file rule; F-series
        (4xx) codes are emitted by the whole-program analyzer behind
        ``--flow``, H-series (5xx) by the hot-path analyzer behind
        ``--perf`` and S-series (6xx) by the typestate analyzer behind
        ``--proto``."""
        static = sorted(c for c in ANALYZER_CODES
                        if not c.startswith(("REPRO4", "REPRO5", "REPRO6")))
        assert sorted(r.code for r in all_rules()) == static
        assert sorted(c for c in ANALYZER_CODES if c.startswith("REPRO4")) \
            == ["REPRO400", "REPRO401", "REPRO402", "REPRO403", "REPRO404"]
        assert sorted(c for c in ANALYZER_CODES if c.startswith("REPRO5")) \
            == ["REPRO500", "REPRO501", "REPRO502", "REPRO503",
                "REPRO504", "REPRO505"]
        assert sorted(c for c in ANALYZER_CODES if c.startswith("REPRO6")) \
            == ["REPRO600", "REPRO601", "REPRO602", "REPRO603",
                "REPRO604", "REPRO605", "REPRO606"]

    def test_rule_decorator_rejects_unknown_code(self):
        with pytest.raises(ValueError, match="unknown code"):
            @rule
            class Bogus(Rule):
                code = "REPRO999"
                name = "bogus"

    def test_rule_decorator_rejects_duplicate_code(self):
        with pytest.raises(ValueError, match="duplicate"):
            @rule
            class Duplicate(Rule):
                code = "REPRO101"
                name = "duplicate"

    def test_register_codes_conflict_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_codes({"REPRO101": ("warning", "different title")})

    def test_register_codes_identical_is_noop(self):
        register_codes({"REPRO101": ANALYZER_CODES["REPRO101"]})

    def test_iter_python_files_dedups_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        got = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
        assert got == [tmp_path / "a.py", tmp_path / "b.py"]

    def test_type_checking_imports_are_exempt(self):
        src = ("from typing import TYPE_CHECKING\n\n"
               "if TYPE_CHECKING:\n"
               "    import random\n")
        report = check_source(src, Path("x.py"))
        assert report.diagnostics == []

    def test_allowlisted_file_skips_random_rule(self):
        report = check_source("import random\n",
                              Path("src/repro/sim/rand.py"))
        assert report.diagnostics == []


class TestCli:
    def test_no_paths_is_usage_error(self, capsys):
        assert check_main([]) == 2
        assert "no paths given" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert check_main(["does/not/exist.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules_prints_full_inventory(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ANALYZER_CODES:
            assert code in out
