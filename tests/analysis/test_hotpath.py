"""Unit tests for the hot-path analyzer (H-series, ``repro check --perf``)."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.flow.symbols import FileUnit, SymbolTable
from repro.analysis.hotpath import build_hot_context, run_hotpath
from repro.analysis.hotpath.checker import heat_share

FIXTURES = Path(__file__).parent / "fixtures"


def table_for(source: str) -> SymbolTable:
    tree = ast.parse(source)
    unit = FileUnit(path=Path("mod.py"), posix="mod.py", module="mod",
                    source=source, tree=tree)
    return SymbolTable([unit])


def run_source(source: str, tmp_path, profile=None):
    target = tmp_path / "mod.py"
    target.write_text(source, encoding="utf-8")
    return run_hotpath([target], profile=profile)


SERVICE_LOOP = """
from repro.sim import Interrupt

class Daemon:
    def serve(self, sock):
        try:
            while True:
                dgram = yield sock.recv()
                self.handle(dgram)
        except Interrupt:
            sock.close()

    def handle(self, dgram):
        return self.decode(dgram)

    def decode(self, dgram):
        return dgram.payload

def helper_never_called(x):
    return x
"""


class TestHotContext:
    def test_service_loop_is_a_root(self):
        ctx = build_hot_context(table_for(SERVICE_LOOP))
        assert "mod.Daemon.serve" in ctx.roots

    def test_reachability_closure_is_hot(self):
        ctx = build_hot_context(table_for(SERVICE_LOOP))
        for qual in ("mod.Daemon.serve", "mod.Daemon.handle",
                     "mod.Daemon.decode"):
            assert ctx.is_hot(qual)
        assert not ctx.is_hot("mod.helper_never_called")

    def test_spawned_generator_is_hot(self):
        src = """
class Listener:
    def accept_loop(self, sock):
        while True:
            conn = yield sock.accept()
            self.sim.process(self.session(conn), name="peer-session")

    def session(self, conn):
        yield conn.recv()
"""
        ctx = build_hot_context(table_for(src))
        assert ctx.is_hot("mod.Listener.session")
        assert ctx.spawn_names["mod.Listener.session"] == "peer-session"

    def test_heat_names_fall_back_to_bare_function_name(self):
        ctx = build_hot_context(table_for(SERVICE_LOOP))
        assert ctx.heat_names("mod.Daemon.decode") == ("serve",)

    def test_registry_handlers_are_roots(self):
        src = """
WIRE_TAG_HANDLERS = {
    "PULL": ("mod.Handler.on_pull",),
}

class Handler:
    def on_pull(self, msg):
        return self.reply(msg)

    def reply(self, msg):
        return msg
"""
        ctx = build_hot_context(table_for(src))
        assert ctx.is_hot("mod.Handler.on_pull")
        assert ctx.is_hot("mod.Handler.reply")


class TestRulePrecision:
    """Shapes that must NOT fire — the precision half of each rule."""

    def test_memoized_order_is_clean(self, tmp_path):
        report = run_source("""
class W:
    def serve(self, sock):
        while True:
            dgram = yield sock.recv()
            for addr in self._candidate_order(self.sysdb):
                pass

    def _candidate_order(self, sysdb):
        order = sorted(sysdb)
        return order
""", tmp_path)
        assert report.findings == []

    def test_cold_function_db_scan_is_clean(self, tmp_path):
        report = run_source("""
def offline_report(sysdb):
    for addr in sorted(sysdb):
        print(addr)
""", tmp_path)
        assert report.findings == []

    def test_loop_varying_construction_is_clean(self, tmp_path):
        report = run_source("""
class Item:
    def __init__(self, value):
        self.value = value

class D:
    def serve(self, queue):
        while True:
            batch = yield queue.get()
            for entry in batch:
                item = Item(entry)
""", tmp_path)
        assert report.findings == []

    def test_raise_site_construction_is_clean(self, tmp_path):
        report = run_source("""
class ProtocolError(Exception):
    def __init__(self, detail):
        self.detail = detail

class D:
    def serve(self, sock):
        while True:
            dgram = yield sock.recv()
            if not dgram.payload:
                raise ProtocolError("empty")
""", tmp_path)
        assert report.findings == []

    def test_for_iter_sort_is_not_recompute(self, tmp_path):
        """A for loop's own iterable is evaluated once per entry."""
        report = run_source("""
class D:
    def serve(self, queue):
        while True:
            msg = yield queue.get()
            self.consume(msg)

    def consume(self, msg):
        for key in sorted(msg.parts):
            pass
""", tmp_path)
        assert report.findings == []

    def test_set_growth_is_clean(self, tmp_path):
        report = run_source("""
class D:
    def __init__(self):
        self.seen = set()

    def serve(self, sock):
        while True:
            dgram = yield sock.recv()
            if dgram.src not in self.seen:
                self.seen.add(dgram.src)
""", tmp_path)
        assert report.findings == []

    def test_callback_loop_with_return_is_clean(self, tmp_path):
        """The kernel's own resume loop (while True + return) shape."""
        report = run_source("""
class Tap:
    def attach(self, sim):
        sim.add_callback(self.on_event)

    def on_event(self, event):
        while True:
            if not self.queue:
                return
            self.queue.pop()
""", tmp_path)
        assert report.findings == []


class TestReport:
    def test_findings_sorted_and_counted(self, tmp_path):
        report = run_source("""
class W:
    def serve(self, sock):
        while True:
            dgram = yield sock.recv()
            snap = dict(self.sysdb)
            for addr in sorted(self.sysdb):
                pass
""", tmp_path)
        codes = [f.diag.code for f in report.findings]
        assert codes == ["REPRO501", "REPRO500"]  # line order
        assert report.exit_code == 1
        assert report.root_count == 1

    def test_parse_failure_sets_exit_code(self, tmp_path):
        report = run_source("def broken(:\n", tmp_path)
        assert report.parse_failures and report.exit_code == 1

    def test_fixture_dir_yields_exactly_the_six_codes(self):
        report = run_hotpath([p for p in sorted(FIXTURES.glob("h5*.py"))])
        codes = sorted({f.diag.code for f in report.findings})
        assert codes == ["REPRO500", "REPRO501", "REPRO502",
                         "REPRO503", "REPRO504", "REPRO505"]


PROFILE = {
    "processes": {
        "wizard": {"resumes": 60, "allocations": 0,
                   "first_s": 0.0, "last_s": 1.0},
        "wizard-helper": {"resumes": 20, "allocations": 0,
                          "first_s": 0.0, "last_s": 1.0},
        "other": {"resumes": 20, "allocations": 0,
                  "first_s": 0.0, "last_s": 1.0},
    },
    "event_types": {}, "total_events": 100,
    "total_allocations": 0, "sim_time_s": 1.0,
}


class TestHeatRanking:
    def test_heat_share_matches_prefix_groups(self):
        assert heat_share(PROFILE, ("wizard",)) == pytest.approx(0.8)
        assert heat_share(PROFILE, ("other",)) == pytest.approx(0.2)
        assert heat_share(PROFILE, ("nope",)) == 0.0

    def test_profile_reranks_hottest_first(self, tmp_path):
        src = """
class Cold:
    def serve(self, sock):
        while True:
            dgram = yield sock.recv()
            snap = dict(self.hostdb)

class Hot:
    def start(self, sim, sock):
        sim.process(self.serve(sock), name="wizard")

    def serve(self, sock):
        while True:
            dgram = yield sock.recv()
            snap = dict(self.hostdb)
"""
        plain = run_source(src, tmp_path)
        assert [f.qualname for f in plain.findings] == \
            ["mod.Cold.serve", "mod.Hot.serve"]
        ranked = run_source(src, tmp_path, profile=PROFILE)
        assert ranked.profiled
        assert [f.qualname for f in ranked.findings] == \
            ["mod.Hot.serve", "mod.Cold.serve"]
        assert ranked.findings[0].heat == pytest.approx(0.8)
        assert ranked.findings[1].heat == 0.0
