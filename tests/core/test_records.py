"""Tests for status records and wire encodings."""

from __future__ import annotations

import pytest

from repro.core import (
    MSG_NETDB,
    MSG_PULL,
    MSG_SECDB,
    MSG_SYSDB,
    NetMetric,
    NetStatusRecord,
    SecurityRecord,
    ServerStatusRecord,
    ServerStatusReport,
    WireMessage,
)
from repro.core.records import SERVER_RECORD_BYTES, validate_report_keys
from repro.lang.variables import SERVER_SIDE_VARS


def sample_report(**overrides):
    values = {name: float(i) for i, name in enumerate(SERVER_SIDE_VARS)}
    values.update(overrides)
    return ServerStatusReport(host="mimas", addr="192.168.1.3",
                              group="lab", values=values)


class TestAsciiWire:
    def test_roundtrip_exact(self):
        report = sample_report(host_cpu_free=0.875, host_system_load1=1.25)
        back = ServerStatusReport.from_wire(report.to_wire())
        assert back.host == report.host
        assert back.addr == report.addr
        assert back.group == report.group
        assert back.values == report.values

    def test_wire_is_ascii_printable(self):
        wire = sample_report().to_wire()
        assert wire.isascii()
        assert "\n" not in wire

    def test_wire_size_in_thesis_ballpark(self):
        # thesis §3.2.1: "less than 200 bytes"... our 22 full-precision
        # values run a bit larger but stay well under one MTU
        assert sample_report().wire_bytes < 900

    def test_integral_values_encode_without_decimals(self):
        wire = sample_report(host_memory_total=268435456.0).to_wire()
        assert "host_memory_total=268435456" in wire
        assert "host_memory_total=268435456.0" not in wire

    def test_malformed_wire_rejected(self):
        with pytest.raises(ValueError):
            ServerStatusReport.from_wire("no pipes here")
        with pytest.raises(ValueError):
            ServerStatusReport.from_wire("h|a|g|novalue")

    def test_validate_report_keys_accepts_known(self):
        validate_report_keys(sample_report())

    def test_validate_report_keys_rejects_unknown(self):
        report = sample_report()
        report.values["host_gpu_load"] = 1.0
        with pytest.raises(ValueError, match="host_gpu_load"):
            validate_report_keys(report)


class TestRecords:
    def test_age(self):
        rec = ServerStatusRecord(report=sample_report(), updated_at=10.0)
        assert rec.age(16.0) == 6.0
        assert rec.addr == "192.168.1.3"
        assert rec.host == "mimas"

    def test_net_metric_immutable(self):
        m = NetMetric(delay_ms=1.0, bw_mbps=95.0)
        with pytest.raises(AttributeError):
            m.bw_mbps = 10.0  # type: ignore[misc]


class TestWireMessages:
    def test_sysdb_size_follows_thesis_struct(self):
        records = {f"10.0.0.{i}": ServerStatusRecord(sample_report(), 0.0)
                   for i in range(5)}
        msg = WireMessage.sysdb(records)
        assert msg.type == MSG_SYSDB
        assert msg.size == 5 * SERVER_RECORD_BYTES

    def test_netdb_size_scales_with_pairs(self):
        rec = NetStatusRecord(group="g1", metrics={
            "g2": NetMetric(1.0, 90.0), "g3": NetMetric(2.0, 80.0),
        })
        msg = WireMessage.netdb({"g1": rec})
        assert msg.type == MSG_NETDB
        assert msg.size == 64

    def test_secdb_and_pull(self):
        msg = WireMessage.secdb({"h": SecurityRecord("h", 2)})
        assert msg.type == MSG_SECDB
        assert WireMessage.pull().type == MSG_PULL

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            WireMessage(99, 10, None)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WireMessage(MSG_SYSDB, -1, None)


class TestWireTagHandlers:
    """The REPRO302 cross-check registry must itself stay honest."""

    def test_every_wire_tag_has_a_handler(self):
        from repro.core import records

        tags = {name for name in records.__all__
                if name.startswith(("MSG_", "REPLY_"))}
        assert set(records.WIRE_TAG_HANDLERS) == tags
        assert all(records.WIRE_TAG_HANDLERS[t] for t in tags)

    def test_handler_paths_resolve_to_live_code(self):
        """Every dotted path names an importable attribute, so the table
        cannot drift into pointing at renamed or deleted handlers."""
        import importlib

        from repro.core.records import WIRE_TAG_HANDLERS

        for tag, paths in WIRE_TAG_HANDLERS.items():
            for dotted in paths:
                # split module vs class.method: import the longest module
                # prefix, then getattr the rest
                parts = dotted.split(".")
                for split in range(len(parts) - 1, 0, -1):
                    try:
                        obj = importlib.import_module(".".join(parts[:split]))
                    except ImportError:
                        continue
                    break
                else:
                    raise AssertionError(f"{tag}: cannot import {dotted}")
                for name in parts[split:]:
                    assert hasattr(obj, name), (
                        f"{tag}: {dotted} does not resolve at {name!r}")
                    obj = getattr(obj, name)

    def test_drifted_registry_raises_runtime_error(self):
        """The import-time guard is a real raise (not an assert that
        ``python -O`` strips): a registry missing a tag, or carrying a
        stray one, must refuse to import."""
        from repro.core.records import (WIRE_TAG_HANDLERS,
                                        _verify_wire_tag_registry)

        exported = ["MSG_SYSDB", "MSG_PULL", "REPLY_OK"]
        good = {t: ("x.y",) for t in exported}
        _verify_wire_tag_registry(good, exported)  # no raise

        missing = dict(good)
        del missing["MSG_PULL"]
        with pytest.raises(RuntimeError, match=r"missing=\['MSG_PULL'\]"):
            _verify_wire_tag_registry(missing, exported)

        extra = dict(good)
        extra["MSG_GHOST"] = ("x.y",)
        with pytest.raises(RuntimeError, match=r"extra=\['MSG_GHOST'\]"):
            _verify_wire_tag_registry(extra, exported)

        # and the shipped registry passes its own guard
        from repro.core import records
        _verify_wire_tag_registry(WIRE_TAG_HANDLERS, records.__all__)

    def test_record_floor_guard_raises_runtime_error(self):
        from repro.core.records import _verify_record_floor

        _verify_record_floor(204, 22)  # the shipped sizing
        with pytest.raises(RuntimeError, match="cannot hold"):
            _verify_record_floor(100, 22)
