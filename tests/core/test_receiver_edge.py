"""Edge cases of the receiver/transmitter pairing and wizard group mapping."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, Deployment
from repro.core import Config
from repro.core.records import MSG_SYSDB


def world():
    cluster = Cluster(seed=71)
    w = cluster.add_host("w")
    m = cluster.add_host("m")
    s = cluster.add_host("s")
    cluster.link(w, m)
    cluster.link(m, s)
    cluster.finalize()
    cfg = Config(probe_interval=0.5, transmit_interval=0.5)
    dep = Deployment(cluster, wizard_host=w, config=cfg)
    dep.add_group("g", monitor_host=m, servers=[s])
    dep.start()
    return cluster, dep


class TestTransmitterRestart:
    def test_push_resumes_after_transmitter_restart(self):
        cluster, dep = world()
        cluster.run(until=3.0)
        tx = dep.groups["g"].transmitter
        before = tx.snapshots_sent
        assert before > 0
        tx.stop()
        cluster.run(until=5.0)
        stalled = tx.snapshots_sent
        tx.start()
        cluster.run(until=8.0)
        assert tx.snapshots_sent > stalled
        assert len(dep.receiver.database(MSG_SYSDB)) == 1

    def test_receiver_restart_recovers(self):
        cluster, dep = world()
        cluster.run(until=3.0)
        dep.receiver.stop()
        # wipe the wizard-side segment to prove it refills
        dep.wizard_host.shm.segment(dep.config.shm.wizard_system).write({})
        dep.receiver._sources.clear()
        cluster.run(until=4.0)
        dep.receiver._listener_proc = None
        # a fresh listen on the same port requires the old one gone;
        # Receiver.stop() closed it, so start() works again
        dep.receiver.start()
        cluster.run(until=10.0)
        assert len(dep.receiver.database(MSG_SYSDB)) == 1


class TestGroupMapping:
    def test_unknown_prefix_maps_to_default_group(self):
        cluster, dep = world()
        assert dep.wizard.group_of("203.0.113.50") == dep.wizard.default_group

    def test_server_prefix_maps_to_its_group(self):
        cluster, dep = world()
        server_addr = dep.groups["g"].servers[0].addr
        assert dep.wizard.group_of(server_addr) == "g"


class TestReceiverSessionTermination:
    def test_transmitter_closing_conn_ends_session_quietly(self):
        """A transmitter that closes its push connection must not crash
        the receiver's session process (EOF handling)."""
        cluster, dep = world()
        cluster.run(until=3.0)
        tx = dep.groups["g"].transmitter
        tx.stop()  # closes the TCP connection (FIN)
        cluster.run(until=6.0)  # would raise if the EOF leaked


class TestSkewRebase:
    """Relative-epoch rebasing in :meth:`Receiver._apply` (gray
    failures): freshness must never trust a reporter's wall clock."""

    @staticmethod
    def record(updated_at, host="s"):
        from repro.core.records import ServerStatusRecord, ServerStatusReport
        report = ServerStatusReport(host=host, addr="10.0.0.9", group="g")
        return ServerStatusRecord(report=report, updated_at=updated_at)

    def apply(self, cluster, receiver, stamp, updated_at):
        """Run one _apply; returns (record as stored, sim time of apply)."""
        from tests.conftest import run_process
        data = {"10.0.0.9": self.record(updated_at)}
        at = cluster.sim.now
        run_process(
            cluster.sim,
            receiver._apply("10.0.1.2", MSG_SYSDB, data, stamp),
            until=at + 1.0,
        )
        return receiver.database(MSG_SYSDB)["10.0.0.9"], at

    def test_unstamped_body_is_not_rebased(self):
        cluster, dep = world()
        cluster.run(until=10.0)
        rec, _ = self.apply(cluster, dep.receiver, stamp=-1.0, updated_at=9.0)
        assert rec.updated_at == 9.0
        assert dep.receiver.suspected_skew == 0

    def test_skewed_stamp_is_rebased_to_arrival_minus_age(self):
        """Sender clock +300s: a record 2 s old on *its* clock lands as
        2 s old on *ours* — the offset cancels in the subtraction."""
        cluster, dep = world()
        cluster.run(until=10.0)
        rec, at = self.apply(cluster, dep.receiver,
                             stamp=310.0, updated_at=308.0)
        assert rec.updated_at == pytest.approx(at - 2.0)
        assert dep.receiver.suspected_skew >= 1
        # interval bookkeeping is monotonic: despite the +300 s stamp
        # the database reads as fresh, not minutes old (live pushes keep
        # landing too, so bound rather than pin the age)
        assert dep.receiver.staleness(MSG_SYSDB) <= cluster.sim.now - at

    def test_disagreement_within_tolerance_is_not_flagged(self):
        cluster, dep = world()
        cluster.run(until=10.0)
        before = dep.receiver.suspected_skew
        now = cluster.sim.now
        tol = dep.config.skew_tolerance
        self.apply(cluster, dep.receiver,
                   stamp=now + 0.5 * tol, updated_at=now - 1.0)
        assert dep.receiver.suspected_skew == before

    def test_receivers_own_skew_never_makes_data_stale(self):
        """A skew step on the wizard machine itself flags disagreement
        with honest reporters but cannot age the databases: freshness is
        judged on the monotonic clock."""
        cluster, dep = world()
        cluster.run(until=10.0)
        dep.wizard_host.clock.set_skew(300.0)
        now = cluster.sim.now
        rec, at = self.apply(cluster, dep.receiver,
                             stamp=now, updated_at=now - 1.0)
        assert dep.receiver.suspected_skew >= 1   # wall clocks disagree
        assert rec.updated_at == pytest.approx(now - 1.0)
        assert dep.receiver.min_freshness_age() <= cluster.sim.now - at
