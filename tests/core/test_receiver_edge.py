"""Edge cases of the receiver/transmitter pairing and wizard group mapping."""

from __future__ import annotations

from repro.cluster import Cluster, Deployment
from repro.core import Config
from repro.core.records import MSG_SYSDB


def world():
    cluster = Cluster(seed=71)
    w = cluster.add_host("w")
    m = cluster.add_host("m")
    s = cluster.add_host("s")
    cluster.link(w, m)
    cluster.link(m, s)
    cluster.finalize()
    cfg = Config(probe_interval=0.5, transmit_interval=0.5)
    dep = Deployment(cluster, wizard_host=w, config=cfg)
    dep.add_group("g", monitor_host=m, servers=[s])
    dep.start()
    return cluster, dep


class TestTransmitterRestart:
    def test_push_resumes_after_transmitter_restart(self):
        cluster, dep = world()
        cluster.run(until=3.0)
        tx = dep.groups["g"].transmitter
        before = tx.snapshots_sent
        assert before > 0
        tx.stop()
        cluster.run(until=5.0)
        stalled = tx.snapshots_sent
        tx.start()
        cluster.run(until=8.0)
        assert tx.snapshots_sent > stalled
        assert len(dep.receiver.database(MSG_SYSDB)) == 1

    def test_receiver_restart_recovers(self):
        cluster, dep = world()
        cluster.run(until=3.0)
        dep.receiver.stop()
        # wipe the wizard-side segment to prove it refills
        dep.wizard_host.shm.segment(dep.config.shm.wizard_system).write({})
        dep.receiver._sources.clear()
        cluster.run(until=4.0)
        dep.receiver._listener_proc = None
        # a fresh listen on the same port requires the old one gone;
        # Receiver.stop() closed it, so start() works again
        dep.receiver.start()
        cluster.run(until=10.0)
        assert len(dep.receiver.database(MSG_SYSDB)) == 1


class TestGroupMapping:
    def test_unknown_prefix_maps_to_default_group(self):
        cluster, dep = world()
        assert dep.wizard.group_of("203.0.113.50") == dep.wizard.default_group

    def test_server_prefix_maps_to_its_group(self):
        cluster, dep = world()
        server_addr = dep.groups["g"].servers[0].addr
        assert dep.wizard.group_of(server_addr) == "g"


class TestReceiverSessionTermination:
    def test_transmitter_closing_conn_ends_session_quietly(self):
        """A transmitter that closes its push connection must not crash
        the receiver's session process (EOF handling)."""
        cluster, dep = world()
        cluster.run(until=3.0)
        tx = dep.groups["g"].transmitter
        tx.stop()  # closes the TCP connection (FIN)
        cluster.run(until=6.0)  # would raise if the EOF leaked
