"""Wizard static pre-flight: NAK replies, compile cache, counters."""

from __future__ import annotations

from repro.core import REPLY_NAK, REPLY_OK, WizardReply, WizardRequest

from tests.core.test_wizard import CLIENT, make_wizard, record, request

UNSAT = "host_cpu_free > 2"   # fraction in [0, 1]: provably false


def drive(gen):
    """Run a wizard ``_process`` generator that must not touch the sim."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator yielded — it touched shared memory")


class TestStaticNak:
    def test_unsatisfiable_request_is_nakked(self):
        wizard = make_wizard()
        reply = drive(wizard._process(request(UNSAT), CLIENT))
        assert reply.is_nak
        assert reply.status == REPLY_NAK
        assert reply.servers == ()
        assert wizard.requests_rejected_static == 1

    def test_nak_carries_diagnostics(self):
        wizard = make_wizard()
        reply = drive(wizard._process(request(UNSAT), CLIENT))
        codes = [d.code for d in reply.diagnostics]
        assert "REQ101" in codes
        diag = reply.diagnostics[0]
        assert diag.line >= 1 and diag.col >= 1
        assert "REQ101" in diag.render("req")
        assert reply.wire_bytes > 8  # diagnostics cost wire space

    def test_nak_happens_before_any_db_read(self):
        """The NAK path must return without a single yield: reading the
        shared-memory databases requires acquiring segment locks, which
        would suspend the generator."""
        wizard = make_wizard()
        calls = []

        def fake_databases():
            calls.append(1)
            return {}, {}, {}
            yield  # pragma: no cover - generator marker

        wizard.databases = fake_databases
        drive(wizard._process(request(UNSAT), CLIENT))
        assert calls == []  # NAKed without touching the databases

    def test_satisfiable_request_reads_databases(self):
        wizard = make_wizard()
        calls = []

        def fake_databases():
            calls.append(1)
            return {"10.1.1.1": record("a", "10.1.1.1")}, {}, {}
            yield  # pragma: no cover - generator marker

        wizard.databases = fake_databases
        reply = drive(wizard._process(request("host_cpu_free > 0.5"), CLIENT))
        assert calls == [1]
        assert not reply.is_nak
        assert reply.status == REPLY_OK
        assert reply.servers == ("10.1.1.1",)

    def test_faulted_logical_statement_is_nakked(self):
        """An arity error inside a logical statement faults at runtime,
        which makes the statement false for every server — NAKable."""
        wizard = make_wizard()
        reply = drive(wizard._process(request("sin(1, 2) > 0"), CLIENT))
        assert reply.is_nak
        assert any(d.code == "REQ004" for d in reply.diagnostics)

    def test_always_true_is_not_nakked(self):
        """Always-true is only a warning: the variable may be missing at
        runtime, so the wizard must still scan and evaluate."""
        wizard = make_wizard()
        sysdb = {"10.1.1.1": record("a", "10.1.1.1")}
        out = wizard.match(request("host_cpu_free >= 0"), CLIENT, sysdb, {}, {})
        assert out == ["10.1.1.1"]
        assert wizard.requests_rejected_static == 0


class TestCompileCache:
    def test_repeated_requests_hit_the_cache(self):
        wizard = make_wizard()
        sysdb = {"10.1.1.1": record("a", "10.1.1.1")}
        for _ in range(5):
            wizard.match(request("host_cpu_free > 0.5"), CLIENT, sysdb, {}, {})
        assert wizard.compile_cache_misses == 1
        assert wizard.compile_cache_hits == 4

    def test_distinct_requirements_miss_separately(self):
        wizard = make_wizard()
        sysdb = {"10.1.1.1": record("a", "10.1.1.1")}
        wizard.match(request("host_cpu_free > 0.5"), CLIENT, sysdb, {}, {})
        wizard.match(request("host_cpu_free > 0.6"), CLIENT, sysdb, {}, {})
        assert wizard.compile_cache_misses == 2

    def test_parse_failures_counted_per_call_despite_cache(self):
        wizard = make_wizard()
        sysdb = {"10.1.1.1": record("a", "10.1.1.1")}
        assert wizard.match(request("@@@ ???"), CLIENT, sysdb, {}, {}) == []
        assert wizard.match(request("@@@ ???"), CLIENT, sysdb, {}, {}) == []
        assert wizard.parse_failures == 2
        assert wizard.compile_cache_hits == 1

    def test_match_still_correct_through_folded_ast(self):
        """The cached folded AST must select exactly what the raw program
        would: Table 5.3's requirement with a constant subexpression."""
        wizard = make_wizard()
        sysdb = {
            "10.1.1.1": record("fast", "10.1.1.1", host_cpu_bogomips=4771.0),
            "10.1.1.2": record("slow", "10.1.1.2", host_cpu_bogomips=1730.0),
        }
        req = request("host_cpu_bogomips > 4*1000")
        assert wizard.match(req, CLIENT, sysdb, {}, {}) == ["10.1.1.1"]
        assert wizard.match(req, CLIENT, sysdb, {}, {}) == ["10.1.1.1"]
        assert wizard.compile_cache_hits == 1


class TestReplyWire:
    def test_ok_reply_wire_size_unchanged_from_table_3_6(self):
        r = WizardReply(seq=9, servers=("10.0.0.1",))
        assert r.status == REPLY_OK
        assert r.wire_bytes == 8 + len("10.0.0.1") + 1

    def test_nak_reply_pays_for_its_diagnostics(self):
        from repro.core import WireDiagnostic
        from repro.lang import analyze

        diags = tuple(WireDiagnostic.from_diagnostic(d)
                      for d in analyze(UNSAT).diagnostics)
        r = WizardReply(seq=9, servers=(), status=REPLY_NAK, diagnostics=diags)
        assert r.wire_bytes == 8 + sum(d.wire_bytes for d in diags)
        assert r.server_num == 0  # status flag rides in the sign bit

    def test_request_wire_size_unchanged(self):
        r = WizardRequest(seq=1, server_num=3, option="", detail="a > 1")
        assert r.wire_bytes == 12 + len("a > 1")
