"""The self-healing session layer: health leases (LeaseResponder +
SmartSession lease loop) and server failover."""

from __future__ import annotations

from repro.cluster import Cluster, Deployment
from repro.core import Config, LeaseResponder, SmartClient, SmartSession, smart_sessions
from repro.sim import Interrupt
from tests.conftest import run_process

REQ = "host_cpu_free > 0"


def sink_service(host, port=9000):
    """Accept application connections and hold them open (no traffic)."""
    def serve():
        listener = host.stack.tcp.listen(port)
        conns = []
        try:
            while True:
                conn = yield listener.accept()
                conns.append(conn)
        except Interrupt:
            listener.close()

    return host.sim.process(serve(), name=f"sink@{host.name}")


def lease_world(**config_kwargs):
    """cli <-> sw <-> srv, with a sink service on srv.  No wizard: the
    lease path never talks to one."""
    cluster = Cluster(seed=7)
    cli = cluster.add_host("cli")
    srv = cluster.add_host("srv")
    sw = cluster.add_switch("sw")
    cluster.link(cli, sw)
    cluster.link(srv, sw)
    cluster.finalize()
    cfg = Config(lease_interval=0.5, lease_timeout=1.5,
                 quarantine_period=30.0, **config_kwargs)
    sink_service(srv)
    client = SmartClient(cluster.sim, cli.stack,
                         wizard_addr=srv.addr, config=cfg)
    return cluster, cfg, client, srv


class TestHealthLease:
    def test_responder_answers_pings_on_healthy_conn(self):
        cluster, cfg, client, srv = lease_world()
        responder = LeaseResponder(srv, cfg)
        responder.start()

        def p():
            conn = yield from client.stack.tcp.connect(srv.addr, 9000)
            session = SmartSession(client, conn, REQ)
            session.start_lease()
            yield cluster.sim.timeout(5.0)
            state = (responder.pings_answered, session.lease_expiries,
                     conn.reset)
            session.close()
            return state

        answered, expiries, reset = run_process(cluster.sim, p(), until=30.0)
        # one ping per lease_interval: ~10 in 5 s, minus startup slack
        assert answered >= 8
        assert expiries == 0
        assert not reset

    def test_no_responder_declares_server_dead(self):
        cluster, cfg, client, srv = lease_world()  # responder never started

        def p():
            conn = yield from client.stack.tcp.connect(srv.addr, 9000)
            session = SmartSession(client, conn, REQ)
            session.start_lease()
            yield cluster.sim.timeout(3.0)
            return conn.reset, client.quarantined()

        reset, quarantined = run_process(cluster.sim, p(), until=30.0)
        assert reset  # lease connect failed -> conn aborted for the driver
        assert srv.addr in quarantined

    def test_silent_death_expires_the_lease(self):
        """Partition (no RST ever arrives): only the lease can notice."""
        cluster, cfg, client, srv = lease_world()
        responder = LeaseResponder(srv, cfg)
        responder.start()
        links = [link for link in cluster.network.links
                 if {link.a.name, link.b.name} == {"srv", "sw"}]

        def p():
            conn = yield from client.stack.tcp.connect(srv.addr, 9000)
            session = SmartSession(client, conn, REQ)
            session.start_lease()
            yield cluster.sim.timeout(2.0)
            for link in links:
                link.set_up(False)
            yield cluster.sim.timeout(cfg.lease_timeout + 2 * cfg.lease_interval + 0.5)
            return session.lease_expiries, conn.reset, client.quarantined()

        expiries, reset, quarantined = run_process(cluster.sim, p(), until=30.0)
        assert expiries == 1
        assert reset  # silent death surfaced as an abort to the driver
        assert srv.addr in quarantined

    def test_orderly_close_stops_the_lease(self):
        cluster, cfg, client, srv = lease_world()
        responder = LeaseResponder(srv, cfg)
        responder.start()

        def p():
            conn = yield from client.stack.tcp.connect(srv.addr, 9000)
            session = SmartSession(client, conn, REQ)
            session.start_lease()
            yield cluster.sim.timeout(2.0)
            session.close()
            answered_at_close = responder.pings_answered
            yield cluster.sim.timeout(3.0)
            return (conn.closed, session.lease_expiries,
                    responder.pings_answered, answered_at_close,
                    client.quarantined())

        closed, expiries, after, at_close, quarantined = run_process(
            cluster.sim, p(), until=30.0)
        assert closed
        assert expiries == 0
        assert after == at_close  # no pings after close
        assert quarantined == set()


def failover_world(n_servers=3, **config_kwargs):
    """A real deployment (wizard + probes) with sink services and lease
    responders on every server."""
    cluster = Cluster(seed=11)
    wizard_host = cluster.add_host("wizard")
    client_host = cluster.add_host("client")
    cluster.link(client_host, wizard_host)
    servers = []
    for i in range(n_servers):
        s = cluster.add_host(f"srv{i}")
        cluster.link(s, wizard_host)
        servers.append(s)
    cluster.finalize()
    cfg = Config(probe_interval=0.5, transmit_interval=0.5,
                 client_timeout=1.0, client_retries=2,
                 client_backoff_base=0.1, client_backoff_cap=0.5,
                 lease_interval=0.5, lease_timeout=1.5,
                 quarantine_period=30.0, **config_kwargs)
    dep = Deployment(cluster, wizard_host=wizard_host, config=cfg)
    dep.add_group("lab", monitor_host=wizard_host, servers=servers)
    dep.start()
    responders = {}
    for s in servers:
        sink_service(s)
        responders[s.name] = LeaseResponder(s, cfg)
        responders[s.name].start()
    return cluster, dep, client_host, servers, responders


def kill_server(cluster, host, responders):
    """Power-fail one application server: abort every conn (peers see
    RST), release its ports, stop its responder."""
    for conn in list(host.stack.tcp.conns.values()):
        conn.abort()
    responders[host.name].stop()
    for listener in list(host.stack.tcp.listeners.values()):
        listener.close()


class TestFailover:
    def test_group_shares_one_exclusion_set(self):
        cluster, dep, client_host, servers, responders = failover_world()
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(dep.warm_up_seconds())
            sessions = yield from smart_sessions(client, REQ, 2)
            state = (len(sessions),
                     sessions[0].excluded is sessions[1].excluded,
                     sessions[0]._siblings is sessions[1]._siblings)
            for s in sessions:
                s.close()
            return state

        n, shared_excl, shared_sibs = run_process(cluster.sim, p(), until=60.0)
        assert n == 2
        assert shared_excl and shared_sibs

    def test_failover_adopts_a_fresh_server(self):
        cluster, dep, client_host, servers, responders = failover_world()
        client = dep.client_for(client_host)
        by_addr = {s.addr: s for s in servers}
        resumes = []

        def p():
            yield cluster.sim.timeout(dep.warm_up_seconds())
            sessions = yield from smart_sessions(
                client, REQ, 2,
                on_resume=lambda s, old, new: resumes.append((old, new)),
            )
            victim = sessions[0]
            old_addr = victim.addr
            sibling_addr = sessions[1].addr
            kill_server(cluster, by_addr[old_addr], responders)
            conn = yield from victim.failover()
            state = (old_addr, sibling_addr, conn, victim)
            for s in sessions:
                s.close()
            return state

        old_addr, sibling_addr, conn, victim = run_process(
            cluster.sim, p(), until=120.0)
        assert conn is not None and conn is victim.conn
        assert victim.failovers == 1 and not victim.dead
        assert victim.addr != old_addr
        assert old_addr in victim.excluded
        assert victim.history == [old_addr, victim.addr]
        # with a spare available, don't double up on the live sibling
        assert victim.addr != sibling_addr
        assert resumes == [(old_addr, victim.addr)]

    def test_failover_exhaustion_marks_slot_dead(self):
        cluster, dep, client_host, servers, responders = failover_world(
            n_servers=1, session_retries=2)
        client = dep.client_for(client_host)
        by_addr = {s.addr: s for s in servers}

        def p():
            yield cluster.sim.timeout(dep.warm_up_seconds())
            sessions = yield from smart_sessions(client, REQ, 1)
            victim = sessions[0]
            kill_server(cluster, by_addr[victim.addr], responders)
            conn = yield from victim.failover()
            return conn, victim

        conn, victim = run_process(cluster.sim, p(), until=120.0)
        assert conn is None
        assert victim.dead
        assert victim.failovers == 0


def drip_service(host, chunks, period, port=9100, size=4000):
    """Accept one connection and send ``chunks`` bursts ``period`` apart,
    then go silent — connected, leased, but starving (a fail-slow
    server as the data plane sees it)."""
    def serve():
        listener = host.stack.tcp.listen(port)
        try:
            conn = yield listener.accept()
            for _ in range(chunks):
                yield host.sim.timeout(period)
                conn.send(b"x" * size, size)
            yield host.sim.timeout(10_000.0)  # stall, forever
        except Interrupt:
            listener.close()

    return host.sim.process(serve(), name=f"drip@{host.name}")


WATCHDOG_CFG = dict(session_watchdog_interval=0.25,
                    session_watchdog_min_samples=4,
                    session_watchdog_phi=3.0)


class TestThroughputWatchdog:
    """The session watchdog (gray failures): a leased-but-starving
    connection is proactively aborted once the inter-progress gap's
    phi-accrual suspicion crosses the threshold."""

    def watchdog_world(self, chunks, **cfg):
        cluster, config, client, srv = lease_world(**{**WATCHDOG_CFG, **cfg})
        drip_service(srv, chunks=chunks, period=0.5)
        responder = LeaseResponder(srv, config)
        responder.start()
        return cluster, client, srv, responder

    def run_session(self, cluster, client, srv, horizon=12.0):
        def p():
            conn = yield from client.stack.tcp.connect(srv.addr, 9100)
            session = SmartSession(client, conn, REQ)
            session.start_lease()
            yield cluster.sim.timeout(horizon)
            session.close()
            return session, conn

        return run_process(cluster.sim, p(), until=horizon + 30.0)

    def test_stall_after_warmup_migrates(self):
        cluster, client, srv, responder = self.watchdog_world(chunks=8)
        session, conn = self.run_session(cluster, client, srv)
        assert session.slow_migrations == 1
        assert conn.reset, "watchdog must abort through the dead-server path"
        # gray, not black: the lease stayed healthy throughout
        assert session.lease_expiries == 0
        assert responder.pings_answered > 0
        (when, addr), = session.watchdog_log
        assert addr == srv.addr and when > 8 * 0.5
        # the sentence may have decayed by the time the sim drains, but
        # the entry proves the dead-server path was taken
        assert srv.addr in session.client._quarantine

    def test_steady_progress_never_fires(self):
        cluster, client, srv, responder = self.watchdog_world(chunks=40)
        session, conn = self.run_session(cluster, client, srv)
        assert session.slow_migrations == 0
        assert not conn.reset

    def test_cold_detector_never_fires(self):
        """A session that stalls before ``min_samples`` progress gaps has
        no baseline — suspicion stays 0 and the slot is not flapped."""
        cluster, client, srv, responder = self.watchdog_world(chunks=2)
        session, conn = self.run_session(cluster, client, srv)
        assert session.slow_migrations == 0
        assert not conn.reset

    def test_interval_zero_disables_the_watchdog(self):
        cluster, client, srv, responder = self.watchdog_world(
            chunks=8, session_watchdog_interval=0.0)
        session, conn = self.run_session(cluster, client, srv)
        assert session._watchdog_proc is None
        assert session.slow_migrations == 0 and not conn.reset

    def test_close_stops_the_watchdog_process(self):
        cluster, client, srv, responder = self.watchdog_world(chunks=40)

        def p():
            conn = yield from client.stack.tcp.connect(srv.addr, 9100)
            session = SmartSession(client, conn, REQ)
            session.start_lease()
            proc = session._watchdog_proc
            assert proc is not None and proc.is_alive
            yield cluster.sim.timeout(3.0)
            session.close()
            return session, proc

        session, proc = run_process(cluster.sim, p(), until=40.0)
        assert session._watchdog_proc is None
        assert not proc.is_alive
