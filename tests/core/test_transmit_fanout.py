"""Transmitter fan-out to a receiver replica set (the HA control plane):
one independent push loop per receiver, so a dead/partitioned replica
never stalls the healthy ones."""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core import MSG_SYSDB, Config, Mode, Receiver, Transmitter
from tests.core.test_transmit import seed_monitor_shm


def make_fanout_world(n_receivers=2, **config_kwargs):
    """One monitor fanning out to ``n_receivers`` wizard machines."""
    cluster = Cluster(seed=9)
    sw = cluster.add_switch("sw")
    mon = cluster.add_host("mon")
    cluster.link(mon, sw)
    wiz_hosts = []
    for i in range(n_receivers):
        w = cluster.add_host(f"wiz{i}")
        cluster.link(w, sw)
        wiz_hosts.append(w)
    cluster.finalize()
    cfg = Config(transmit_interval=1.0, transmit_stall_limit=3.0,
                 transmit_backoff_cap=2.0, mode=Mode.CENTRALIZED,
                 **config_kwargs)
    seed_monitor_shm(mon, cfg, 1)
    receivers = [Receiver(cluster.sim, w.stack, w.shm, cfg) for w in wiz_hosts]
    tx = Transmitter(cluster.sim, mon.stack, mon.shm,
                     receiver_addrs=[w.addr for w in wiz_hosts], config=cfg)
    return cluster, cfg, tx, receivers, wiz_hosts, mon


class TestFanOut:
    def test_every_replica_gets_the_snapshots(self):
        cluster, cfg, tx, receivers, wiz_hosts, _ = make_fanout_world(3)
        for r in receivers:
            r.start()
        tx.start()
        cluster.run(until=5.0)
        for r in receivers:
            assert "10.0.1.1" in r.database(MSG_SYSDB)
        # per-receiver loops each push at the configured cadence
        for w in wiz_hosts:
            stats = tx.push_stats[w.addr]
            assert stats.snapshots_sent >= 4
            assert stats.connects == 1
        # aggregates are the sum of the per-receiver counters
        assert tx.snapshots_sent == sum(
            s.snapshots_sent for s in tx.push_stats.values())
        assert tx.bytes_sent == sum(
            s.bytes_sent for s in tx.push_stats.values())

    def test_one_dead_replica_does_not_stall_the_others(self):
        """Receiver 1 never starts: its loop sits in connect-backoff while
        receiver 0 keeps getting snapshots at full cadence."""
        cluster, cfg, tx, receivers, wiz_hosts, _ = make_fanout_world(2)
        receivers[0].start()  # receiver 1 stays dark
        tx.start()
        cluster.run(until=6.0)
        live, dark = (tx.push_stats[w.addr] for w in wiz_hosts)
        assert "10.0.1.1" in receivers[0].database(MSG_SYSDB)
        assert receivers[1].database(MSG_SYSDB) == {}
        assert live.snapshots_sent >= 5   # ~1/s, unhindered
        assert dark.snapshots_sent == 0
        assert dark.connects == 0

    def test_late_replica_catches_up_without_disturbing_the_first(self):
        cluster, cfg, tx, receivers, wiz_hosts, _ = make_fanout_world(2)
        receivers[0].start()
        tx.start()

        def late():
            yield cluster.sim.timeout(3.0)
            receivers[1].start()

        cluster.sim.process(late())
        cluster.run(until=9.0)
        live, late_stats = (tx.push_stats[w.addr] for w in wiz_hosts)
        assert "10.0.1.1" in receivers[1].database(MSG_SYSDB)
        assert late_stats.connects == 1
        assert late_stats.snapshots_sent >= 3
        # the always-up loop never skipped a beat while its sibling
        # backed off: full cadence across the whole run
        assert live.snapshots_sent >= 8

    def test_partitioned_replica_trips_only_its_own_stall_watchdog(self):
        cluster, cfg, tx, receivers, wiz_hosts, _ = make_fanout_world(2)
        for r in receivers:
            r.start()
        tx.start()
        links = [link for link in cluster.network.links
                 if {link.a.name, link.b.name} == {"wiz1", "sw"}]

        def chaos():
            yield cluster.sim.timeout(2.5)
            for link in links:
                link.set_up(False)   # silence, no RST: only the watchdog helps
            yield cluster.sim.timeout(6.0)
            for link in links:
                link.set_up(True)

        cluster.sim.process(chaos())
        cluster.run(until=15.0)
        healthy, cut = (tx.push_stats[w.addr] for w in wiz_hosts)
        assert cut.stalls >= 1          # watchdog fired for the cut loop
        assert healthy.stalls == 0      # ...and only for the cut loop
        assert cut.connects >= 2        # reconnected after the heal
        assert cut.last_push_at > 9.0   # pushing again post-heal
        # the healthy loop held its 1/s cadence throughout
        assert healthy.snapshots_sent >= 12
