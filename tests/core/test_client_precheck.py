"""Client pre-submit static check + wizard NAK end-to-end."""

from __future__ import annotations

import pytest

from repro.core import RequirementRejected
from tests.conftest import run_process
from tests.core.test_client_selection import small_deployment

UNSAT = "host_cpu_free > 2"


class TestLocalPrecheck:
    def test_unsatisfiable_rejected_before_any_packet(self):
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)
        with pytest.raises(RequirementRejected) as exc:
            list(client.request_servers(UNSAT, 2))
        assert "REQ101" in str(exc.value)
        assert client.requests_sent == 0
        assert client.precheck_rejections == 1

    def test_misspelling_rejected_locally(self):
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)
        with pytest.raises(RequirementRejected) as exc:
            list(client.request_servers("host_cpu_fre > 0.9", 2))
        assert "host_cpu_free" in str(exc.value)  # did-you-mean survives
        assert client.requests_sent == 0

    def test_parse_failure_rejected_locally(self):
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)
        with pytest.raises(RequirementRejected, match="does not parse"):
            list(client.request_servers("@@@ ???", 2))

    def test_warning_only_requirement_still_goes_out(self):
        """Plain unknown names are warnings (thesis: undefined-in-logical
        evaluates false), so the request must reach the wizard."""
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            reply = yield from client.request_servers("a > 0", 2)
            return reply

        reply = run_process(cluster.sim, p(), until=30.0)
        assert not reply.nak
        assert reply.servers == []  # undefined var disqualifies everyone
        assert client.requests_sent == 1
        assert client.precheck_rejections == 0

    def test_precheck_uses_client_compile_cache(self):
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)
        for _ in range(3):
            with pytest.raises(RequirementRejected):
                list(client.request_servers(UNSAT, 2))
        assert client.compile_cache.misses == 1
        assert client.compile_cache.hits == 2
        assert client.precheck_rejections == 3


class TestWizardNakEndToEnd:
    def test_precheck_false_gets_wizard_nak(self):
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            reply = yield from client.request_servers(UNSAT, 2, precheck=False)
            return reply

        reply = run_process(cluster.sim, p(), until=30.0)
        assert reply.nak
        assert reply.servers == []
        assert any(d.code == "REQ101" for d in reply.diagnostics)
        assert dep.wizard.requests_rejected_static == 1

    def test_smart_sockets_raises_on_nak(self):
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            try:
                yield from client.smart_sockets(UNSAT, 2, precheck=False)
            except RequirementRejected as exc:
                return ("rejected", [d.code for d in exc.diagnostics])

        verdict, codes = run_process(cluster.sim, p(), until=30.0)
        assert verdict == "rejected"
        assert "REQ101" in codes

    def test_good_requirement_unaffected_by_precheck(self):
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            reply = yield from client.request_servers(
                "host_cpu_bogomips > 2500", 5)
            return sorted(cluster.network.hostname_of(a)
                          for a in reply.servers)

        assert run_process(cluster.sim, p(), until=30.0) == ["srv1", "srv2"]
        assert client.precheck_rejections == 0
