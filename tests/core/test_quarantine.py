"""Quarantine TTL decay (satellite of the HA work): the shared
TTL-decay mechanism behind both the dead-server and the dead-wizard
quarantines, plus the client-side wizard-quarantine behaviour."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core import Config, Quarantine, SmartClient
from repro.sim import Simulator
from tests.conftest import run_process


class TestQuarantineDecay:
    def test_add_and_active(self):
        sim = Simulator()
        q = Quarantine(sim, period=5.0)
        q.add("10.0.0.1")
        assert q.active() == {"10.0.0.1"}
        assert q == {"10.0.0.1": 5.0}

    def test_sentence_expires_after_ttl(self):
        sim = Simulator()
        q = Quarantine(sim, period=2.0)
        q.add("10.0.0.1")

        def p():
            yield sim.timeout(2.5)

        run_process(sim, p(), until=10.0)
        assert q.active() == set()
        # expired entries linger in the dict until the next decay pass
        assert "10.0.0.1" in q
        q.decay()
        assert q == {}

    def test_decay_keeps_unexpired_sentences(self):
        sim = Simulator()
        q = Quarantine(sim, period=2.0)
        q.add("early")

        def p():
            yield sim.timeout(1.5)
            q.add("late")
            yield sim.timeout(1.0)  # t=2.5: early expired, late not
            q.decay()
            return (set(q), q.active())

        kept, active = run_process(sim, p(), until=10.0)
        assert kept == {"late"}
        assert active == {"late"}

    def test_re_add_restarts_the_sentence(self):
        sim = Simulator()
        q = Quarantine(sim, period=2.0)
        q.add("a")

        def p():
            yield sim.timeout(1.5)
            q.add("a")  # re-offend at t=1.5: sentence now ends at 3.5
            yield sim.timeout(1.0)  # t=2.5
            return q.active()

        assert run_process(sim, p(), until=10.0) == {"a"}

    def test_custom_period_overrides_default(self):
        sim = Simulator()
        q = Quarantine(sim, period=100.0)
        q.add("a", period=1.0)

        def p():
            yield sim.timeout(1.5)

        run_process(sim, p(), until=10.0)
        assert q.active() == set()


def two_wizard_world(**config_kwargs):
    """cli plus two (silent) wizard hosts — nothing listens on the wizard
    port, so every request times out."""
    cluster = Cluster(seed=13)
    cli = cluster.add_host("cli")
    w1 = cluster.add_host("w1")
    w2 = cluster.add_host("w2")
    sw = cluster.add_switch("sw")
    for h in (cli, w1, w2):
        cluster.link(h, sw)
    cluster.finalize()
    cfg = Config(client_timeout=0.5, client_retries=2,
                 client_backoff_base=0.1, client_backoff_cap=0.5,
                 **config_kwargs)
    client = SmartClient(cluster.sim, cli.stack, config=cfg,
                         wizard_addrs=[w1.addr, w2.addr])
    return cluster, client, w1, w2


class TestWizardQuarantine:
    def test_timeouts_quarantine_and_fail_over(self):
        cluster, client, w1, w2 = two_wizard_world(wizard_quarantine_period=5.0)

        def p():
            reply = yield from client.request_servers("host_cpu_free > 0", 1)
            return reply, client.quarantined_wizards()

        reply, quarantined = run_process(cluster.sim, p(), until=30.0)
        assert reply.servers == []
        # first attempt hits w1, quarantines it; the retry fails over
        assert quarantined == {w1.addr, w2.addr}
        assert client.wizard_failovers >= 1
        assert client.timeouts == 3

    def test_wizard_quarantine_decays(self):
        cluster, client, w1, w2 = two_wizard_world(wizard_quarantine_period=2.0)

        def p():
            yield from client.request_servers("host_cpu_free > 0", 1)
            yield cluster.sim.timeout(5.0)

        run_process(cluster.sim, p(), until=30.0)
        assert client.quarantined_wizards() == set()
        # ranking decays the dict in place: expired sentences purged,
        # configured order restored
        assert client._rank_wizards() == [w1.addr, w2.addr]
        assert client._wizard_quarantine == {}

    def test_ranking_prefers_fresher_epoch(self):
        cluster, client, w1, w2 = two_wizard_world()
        client._wizard_epochs[w2.addr] = 7.5
        assert client._rank_wizards() == [w2.addr, w1.addr]
        # quarantine trumps freshness
        client._note_wizard_failure(w2.addr)
        assert client._rank_wizards() == [w1.addr, w2.addr]


class TestAdaptiveSuspicion:
    """Client-side SuspicionDetector integration (gray failures): warm
    RTT baselines shrink the request timeout and demote fail-slow
    replicas in the ranking before any fixed timeout fires."""

    def test_cold_replica_keeps_the_fixed_timeout(self):
        cluster, client, w1, w2 = two_wizard_world()
        assert client._request_timeout(w1.addr) == client.config.client_timeout
        assert client.slow_wizards() == set()

    def test_warm_baseline_shrinks_the_timeout(self):
        cluster, client, w1, w2 = two_wizard_world()
        for _ in range(client.config.detector_min_samples):
            client.detector.record(w1.addr, 0.05)
        want = max(client.config.client_timeout_floor,
                   0.05 * client.config.client_timeout_scale)
        assert client._request_timeout(w1.addr) == pytest.approx(want)

    def test_adaptive_timeout_is_clamped(self):
        cluster, client, w1, w2 = two_wizard_world()
        for _ in range(10):
            client.detector.record(w1.addr, 1e-4)   # LAN-fast
            client.detector.record(w2.addr, 30.0)   # glacial
        assert client._request_timeout(w1.addr) == \
            client.config.client_timeout_floor
        assert client._request_timeout(w2.addr) == \
            client.config.client_timeout

    def test_fail_slow_replica_ranks_last_despite_fresh_epoch(self):
        """The binary quarantine never catches a slow-but-answering
        replica; the detector's relative demotion must, and it must
        outweigh epoch freshness in the ranking."""
        cluster, client, w1, w2 = two_wizard_world()
        for _ in range(10):
            client.detector.record(w1.addr, 0.02)
            client.detector.record(w2.addr, 0.02 * 10)
        client._wizard_epochs[w2.addr] = 100.0  # freshest data, but slow
        assert client.slow_wizards() == {w2.addr}
        assert client._rank_wizards() == [w1.addr, w2.addr]

    def test_demotion_lifts_when_the_baseline_recovers(self):
        """No sentence to wait out: demotion is a relative judgement on
        the live baseline, so a recovered replica re-qualifies as soon
        as its quantile drifts back down."""
        cluster, client, w1, w2 = two_wizard_world()
        for _ in range(10):
            client.detector.record(w1.addr, 0.02)
            client.detector.record(w2.addr, 0.2)
        assert client.slow_wizards() == {w2.addr}
        for _ in range(400):
            client.detector.record(w2.addr, 0.02)
        assert client.slow_wizards() == set()

    def test_single_warm_replica_is_never_demoted(self):
        """Relative judgement needs a fleet: with one warm baseline there
        is nothing to compare against, so nobody is demoted."""
        cluster, client, w1, w2 = two_wizard_world()
        for _ in range(10):
            client.detector.record(w1.addr, 5.0)
        assert client.slow_wizards() == set()
