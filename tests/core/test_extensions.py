"""Tests for the §6 extensions: TCP probe reporting and string attributes."""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core import Config, ServerProbe, ServerStatusReport, SystemMonitor
from repro.lang import evaluate, parse


def make_world(use_tcp=False, machine_type="i386"):
    cluster = Cluster(seed=37)
    server = cluster.add_host("server")
    server.machine.machine_type = machine_type
    monitor_host = cluster.add_host("monitor")
    cluster.link(server, monitor_host)
    cluster.finalize()
    cfg = Config(probe_interval=1.0)
    sysmon = SystemMonitor(cluster.sim, monitor_host.stack, monitor_host.shm, cfg)
    probe = ServerProbe(
        cluster.sim, server.procfs, server.stack,
        monitor_addr=monitor_host.addr, group="lab", config=cfg,
        use_tcp=use_tcp,
    )
    return cluster, sysmon, probe


class TestTcpReporting:
    def test_tcp_reports_reach_database(self):
        cluster, sysmon, probe = make_world(use_tcp=True)
        sysmon.start()
        probe.start()
        cluster.run(until=4.5)
        assert sysmon.tcp_reports_received >= 3
        db = sysmon.database()
        assert len(db) == 1
        assert list(db.values())[0].host == "server"

    def test_udp_probe_does_not_touch_tcp_counter(self):
        cluster, sysmon, probe = make_world(use_tcp=False)
        sysmon.start()
        probe.start()
        cluster.run(until=3.5)
        assert sysmon.tcp_reports_received == 0
        assert sysmon.reports_received >= 3

    def test_tcp_probe_survives_monitor_starting_late(self):
        cluster, sysmon, probe = make_world(use_tcp=True)
        probe.start()  # monitor not yet listening: connect fails quietly

        def late():
            yield cluster.sim.timeout(3.0)
            sysmon.start()

        cluster.sim.process(late())
        cluster.run(until=10.0)
        assert len(sysmon.database()) == 1

    def test_mixed_transports_share_database(self):
        cluster = Cluster(seed=38)
        s1 = cluster.add_host("s1")
        s2 = cluster.add_host("s2")
        monitor_host = cluster.add_host("monitor")
        cluster.link(s1, monitor_host)
        cluster.link(s2, monitor_host)
        cluster.finalize()
        cfg = Config(probe_interval=1.0)
        sysmon = SystemMonitor(cluster.sim, monitor_host.stack,
                               monitor_host.shm, cfg)
        p_udp = ServerProbe(cluster.sim, s1.procfs, s1.stack,
                            monitor_addr=monitor_host.addr, config=cfg)
        p_tcp = ServerProbe(cluster.sim, s2.procfs, s2.stack,
                            monitor_addr=monitor_host.addr, config=cfg,
                            use_tcp=True)
        sysmon.start()
        p_udp.start()
        p_tcp.start()
        cluster.run(until=4.0)
        assert {r.host for r in sysmon.database().values()} == {"s1", "s2"}


class TestStringAttributes:
    def test_report_carries_machine_type_over_the_wire(self):
        cluster, sysmon, probe = make_world(machine_type="sparc64")
        sysmon.start()
        probe.start()
        cluster.run(until=2.5)
        record = list(sysmon.database().values())[0]
        assert record.report.extras["host_machine_type"] == "sparc64"

    def test_wire_roundtrip_with_extras(self):
        report = ServerStatusReport(
            host="h", addr="10.0.0.1", group="g",
            values={"host_cpu_free": 0.5},
            extras={"host_machine_type": "i386"},
        )
        back = ServerStatusReport.from_wire(report.to_wire())
        assert back.extras == {"host_machine_type": "i386"}
        assert back.values == {"host_cpu_free": 0.5}

    def test_language_equality_on_string_attribute(self):
        params = {"host_machine_type": "i386", "host_cpu_free": 0.9}
        assert evaluate(parse("host_machine_type == i386"), params).qualified
        assert not evaluate(parse("host_machine_type == sparc64"), params).qualified
        assert evaluate(parse("host_machine_type != sparc64"), params).qualified

    def test_undefined_stays_false_outside_string_equality(self):
        params = {"host_machine_type": "i386"}
        # ordering against a string attribute is an error -> false
        assert not evaluate(parse("host_machine_type > ghost"), params).qualified
        # plain undefined-vs-undefined equality is still false
        assert not evaluate(parse("ghost_a == ghost_b"), params).qualified

    def test_wizard_matches_on_machine_type(self):
        from repro.core import ServerStatusRecord, Wizard, WizardRequest

        cluster = Cluster(seed=39)
        w = cluster.add_host("wiz")
        o = cluster.add_host("o")
        cluster.link(w, o)
        cluster.finalize()
        wizard = Wizard(cluster.sim, w.stack, w.shm)
        sysdb = {
            "10.0.0.1": ServerStatusRecord(ServerStatusReport(
                host="intel", addr="10.0.0.1", group="g",
                values={"host_cpu_free": 1.0},
                extras={"host_machine_type": "i386"}), 0.0),
            "10.0.0.2": ServerStatusRecord(ServerStatusReport(
                host="sun", addr="10.0.0.2", group="g",
                values={"host_cpu_free": 1.0},
                extras={"host_machine_type": "sparc64"}), 0.0),
        }
        req = WizardRequest(seq=1, server_num=5, option="",
                            detail="host_machine_type == i386")
        assert wizard.match(req, "10.9.9.9", sysdb, {}, {}) == ["10.0.0.1"]
