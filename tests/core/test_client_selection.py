"""Tests for the client library round-trip and the selection baselines."""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster, Deployment
from repro.core import (
    Config,
    InsufficientServers,
    RandomSelector,
    RoundRobinSelector,
    StaticSelector,
)
from tests.conftest import run_process


def small_deployment(n_servers=3, mode=None):
    cluster = Cluster(seed=11)
    wizard_host = cluster.add_host("wizard")
    client_host = cluster.add_host("client")
    cluster.link(client_host, wizard_host)
    servers = []
    for i in range(n_servers):
        s = cluster.add_host(f"srv{i}", bogomips=2000.0 + 1000 * i)
        cluster.link(s, wizard_host)
        servers.append(s)
    cluster.finalize()
    cfg = Config(probe_interval=0.5, transmit_interval=0.5, client_timeout=1.0)
    dep = Deployment(cluster, wizard_host=wizard_host, config=cfg, mode=mode)
    dep.add_group("lab", monitor_host=wizard_host, servers=servers)
    dep.start()
    return cluster, dep, client_host, servers


class TestClientRoundTrip:
    def test_request_servers_returns_matching(self):
        cluster, dep, client_host, servers = small_deployment()
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            reply = yield from client.request_servers("host_cpu_bogomips > 2500", 5)
            return sorted(cluster.network.hostname_of(a) for a in reply.servers)

        got = run_process(cluster.sim, p(), until=30.0)
        assert got == ["srv1", "srv2"]

    def test_sequence_numbers_match(self):
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            reply = yield from client.request_servers("host_cpu_free > 0.5", 1)
            return reply

        reply = run_process(cluster.sim, p(), until=30.0)
        assert reply.attempts == 1
        assert reply.seq > 0

    def test_smart_sockets_returns_connected(self):
        cluster, dep, client_host, servers = small_deployment()
        for s in servers:
            lsn = s.stack.tcp.listen(9000)
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            conns = yield from client.smart_sockets("host_cpu_free > 0.5", 2)
            return conns

        conns = run_process(cluster.sim, p(), until=30.0)
        assert len(conns) == 2
        assert all(c.established for c in conns)

    def test_strict_mode_raises_on_shortfall(self):
        cluster, dep, client_host, servers = small_deployment()
        for s in servers:
            s.stack.tcp.listen(9000)
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            try:
                yield from client.smart_sockets(
                    "host_cpu_bogomips > 99999", 2, strict=True)
            except InsufficientServers as exc:
                return ("insufficient", exc.wanted)

        assert run_process(cluster.sim, p(), until=30.0) == ("insufficient", 2)

    def test_timeout_then_retry_when_wizard_down(self):
        cluster, dep, client_host, _ = small_deployment()
        dep.wizard.stop()  # wizard daemon dies
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            reply = yield from client.request_servers("host_cpu_free > 0.5", 1)
            return reply

        reply = run_process(cluster.sim, p(), until=60.0)
        assert reply.servers == []
        assert client.timeouts == 1 + client.config.client_retries

    def test_dead_server_skipped_in_connect(self):
        cluster, dep, client_host, servers = small_deployment()
        # only two of three servers actually run the service
        for s in servers[:2]:
            s.stack.tcp.listen(9000)
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            conns = yield from client.smart_sockets("host_cpu_free > 0.5", 3)
            return conns

        conns = run_process(cluster.sim, p(), until=60.0)
        assert len(conns) == 2

    def test_distributed_mode_roundtrip(self):
        cluster, dep, client_host, _ = small_deployment(mode="distributed")
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            reply = yield from client.request_servers("host_cpu_free > 0.5", 3)
            return len(reply.servers)

        assert run_process(cluster.sim, p(), until=60.0) == 3

    def test_invalid_count_rejected(self):
        cluster, dep, client_host, _ = small_deployment()
        client = dep.client_for(client_host)
        with pytest.raises(ValueError):
            list(client.request_servers("a > 1", 0))


class TestSelectors:
    POOL = ["a", "b", "c", "d"]

    def test_random_selector_is_sample_without_replacement(self):
        sel = RandomSelector(self.POOL, rng=random.Random(1))
        picked = sel.select(3)
        assert len(set(picked)) == 3
        assert set(picked) <= set(self.POOL)

    def test_random_selector_overdraw_rejected(self):
        with pytest.raises(ValueError):
            RandomSelector(self.POOL).select(9)

    def test_round_robin_cycles(self):
        sel = RoundRobinSelector(self.POOL)
        assert sel.select(2) == ["a", "b"]
        assert sel.select(3) == ["c", "d", "a"]

    def test_round_robin_overdraw_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinSelector(self.POOL).select(5)

    def test_static_selector_is_prefix(self):
        assert StaticSelector(self.POOL).select(2) == ["a", "b"]

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            RandomSelector([])
        with pytest.raises(ValueError):
            RoundRobinSelector([])
