"""Wizard behaviour under concurrent load and at scale.

The thesis states the wizard "processes the user requests sequentially"
over UDP (to avoid TIME_WAIT exhaustion), and caps replies at 60 servers —
both properties exercised here at deployment scale.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import _drive
from repro.cluster import Cluster, Deployment
from repro.core import Config


def big_world(n_servers=70):
    cluster = Cluster(seed=61)
    wizard_host = cluster.add_host("wizard")
    core = cluster.add_switch("core")
    cluster.link(wizard_host, core)
    clients = []
    for i in range(3):
        c = cluster.add_host(f"client{i}")
        cluster.link(c, core)
        clients.append(c)
    servers = []
    # spread across several /24s (the address allocator tops out at 254)
    for i in range(n_servers):
        s = cluster.add_host(f"srv{i:03d}", bogomips=1500 + 50 * i)
        cluster.link(s, core, subnet=f"10.{i // 60}.{i % 60}")
        servers.append(s)
    cluster.finalize()
    cfg = Config(probe_interval=1.0, transmit_interval=1.0)
    dep = Deployment(cluster, wizard_host=wizard_host, config=cfg)
    dep.add_group("farm", monitor_host=wizard_host, servers=servers)
    dep.start()
    return cluster, dep, clients


class TestScaleAndConcurrency:
    @pytest.fixture(scope="class")
    def world(self):
        cluster, dep, clients = big_world()
        replies = {}

        def one_client(i, host, requirement, n):
            client = dep.client_for(host, seed=i)
            yield cluster.sim.timeout(4.0)
            reply = yield from client.request_servers(requirement, n)
            replies[i] = reply

        procs = [
            cluster.sim.process(one_client(0, clients[0],
                                           "host_cpu_free > 0.5", 100)),
            cluster.sim.process(one_client(1, clients[1],
                                           "host_cpu_bogomips > 4000", 10)),
            cluster.sim.process(one_client(2, clients[2],
                                           "host_cpu_bogomips > 1000000", 5)),
        ]
        for p in procs:
            _drive(cluster, p)
        return dep, replies

    def test_reply_caps_at_60(self, world):
        dep, replies = world
        assert len(replies[0].servers) == 60  # 70 qualified, hard cap 60

    def test_concurrent_clients_each_get_correct_answer(self, world):
        dep, replies = world
        assert len(replies[1].servers) == 10
        assert replies[2].servers == []  # impossible requirement

    def test_all_requests_processed(self, world):
        dep, replies = world
        assert dep.wizard.requests_handled == 3

    def test_sequence_numbers_kept_apart(self, world):
        _, replies = world
        seqs = {r.seq for r in replies.values()}
        assert len(seqs) == 3

    def test_all_70_probes_reported(self, world):
        dep, _ = world
        assert len(dep.groups["farm"].sysmon.database()) == 70
