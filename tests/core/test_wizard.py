"""Tests for wizard matching logic (thesis §3.6.1) — pure, via .match()."""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core import (
    NetMetric,
    NetStatusRecord,
    SecurityRecord,
    ServerStatusRecord,
    ServerStatusReport,
    Wizard,
    WizardReply,
    WizardRequest,
)


def make_wizard(sim=None):
    cluster = Cluster(sim, seed=9)
    w = cluster.add_host("wiz")
    o = cluster.add_host("other")
    cluster.link(w, o, subnet="10.0.0")
    cluster.finalize()
    wizard = Wizard(cluster.sim, w.stack, w.shm)
    wizard.register_group("10.1.1", "g1")
    wizard.register_group("10.2.2", "g2")
    wizard.register_group("10.0.0", "client-net")
    return wizard


def record(host, addr, group="g1", **values):
    defaults = {
        "host_cpu_free": 1.0,
        "host_memory_free": 200.0,
        "host_cpu_bogomips": 3000.0,
        "host_system_load1": 0.0,
    }
    defaults.update(values)
    return ServerStatusRecord(
        ServerStatusReport(host=host, addr=addr, group=group, values=defaults),
        updated_at=0.0,
    )


def request(detail, n=10, option=""):
    return WizardRequest(seq=1, server_num=n, option=option, detail=detail)


CLIENT = "10.0.0.99"


class TestMatching:
    def test_filters_by_requirement(self):
        sysdb = {
            "10.1.1.1": record("fast", "10.1.1.1", host_cpu_bogomips=4771.0),
            "10.1.1.2": record("slow", "10.1.1.2", host_cpu_bogomips=1730.0),
        }
        wizard = make_wizard()
        out = wizard.match(request("host_cpu_bogomips > 4000"), CLIENT, sysdb, {}, {})
        assert out == ["10.1.1.1"]

    def test_server_num_caps_result(self):
        sysdb = {f"10.1.1.{i}": record(f"s{i}", f"10.1.1.{i}") for i in range(1, 9)}
        wizard = make_wizard()
        out = wizard.match(request("host_cpu_free > 0.5", n=3), CLIENT, sysdb, {}, {})
        assert len(out) == 3

    def test_hard_cap_at_60(self):
        wizard = make_wizard()
        sysdb = {}
        for i in range(70):
            addr = f"10.1.{i // 250 + 1}.{i % 250 + 1}"
            sysdb[addr] = record(f"s{i}", addr)
        out = wizard.match(request("host_cpu_free > 0.5", n=100), CLIENT, sysdb, {}, {})
        assert len(out) == 60

    def test_denied_hosts_removed(self):
        sysdb = {
            "10.1.1.1": record("keep", "10.1.1.1"),
            "10.1.1.2": record("blacklisted", "10.1.1.2"),
        }
        req = request("(host_cpu_free > 0.5) && (user_denied_host1 = blacklisted)")
        wizard = make_wizard()
        out = wizard.match(req, CLIENT, sysdb, {}, {})
        assert out == ["10.1.1.1"]

    def test_denied_by_address_also_works(self):
        sysdb = {"10.1.1.2": record("h", "10.1.1.2")}
        req = request("(host_cpu_free > 0.5) && (user_denied_host1 = 10.1.1.2)")
        wizard = make_wizard()
        assert wizard.match(req, CLIENT, sysdb, {}, {}) == []

    def test_preferred_hosts_come_first(self):
        sysdb = {f"10.1.1.{i}": record(f"s{i}", f"10.1.1.{i}") for i in range(1, 5)}
        req = request(
            "host_cpu_free > 0.5\nuser_preferred_host1 = s3", n=2)
        wizard = make_wizard()
        out = wizard.match(req, CLIENT, sysdb, {}, {})
        assert out[0] == "10.1.1.3"

    def test_empty_requirement_qualifies_all(self):
        sysdb = {"10.1.1.1": record("a", "10.1.1.1")}
        wizard = make_wizard()
        assert wizard.match(request(""), CLIENT, sysdb, {}, {}) == ["10.1.1.1"]

    def test_unparseable_requirement_returns_empty(self):
        sysdb = {"10.1.1.1": record("a", "10.1.1.1")}
        wizard = make_wizard()
        out = wizard.match(request("@@@ ???"), CLIENT, sysdb, {}, {})
        assert out == []
        assert wizard.parse_failures == 1

    def test_partial_bad_line_recovers(self):
        sysdb = {
            "10.1.1.1": record("good", "10.1.1.1", host_cpu_bogomips=5000.0),
            "10.1.1.2": record("bad", "10.1.1.2", host_cpu_bogomips=1000.0),
        }
        req = request("host_cpu_bogomips > 4000\n* 3 +\n")
        wizard = make_wizard()
        assert wizard.match(req, CLIENT, sysdb, {}, {}) == ["10.1.1.1"]


class TestMonitorVars:
    def _netdb(self):
        return {
            "client-net": NetStatusRecord(
                group="client-net",
                metrics={"g1": NetMetric(delay_ms=2.0, bw_mbps=95.0),
                         "g2": NetMetric(delay_ms=30.0, bw_mbps=95.0)},
            ),
            "g2": NetStatusRecord(
                group="g2",
                metrics={"client-net": NetMetric(delay_ms=30.0, bw_mbps=5.0)},
            ),
        }

    def test_delay_requirement_uses_client_group_metrics(self):
        sysdb = {
            "10.1.1.1": record("near", "10.1.1.1", group="g1"),
            "10.2.2.1": record("far", "10.2.2.1", group="g2"),
        }
        req = request("monitor_network_delay < 20")
        wizard = make_wizard()
        out = wizard.match(req, CLIENT, sysdb, self._netdb(), {})
        assert out == ["10.1.1.1"]

    def test_bw_takes_min_of_both_directions(self):
        """g2's own shaped egress (5 Mbps) must disqualify it even though
        the client-side probe saw 95 Mbps toward g2."""
        sysdb = {"10.2.2.1": record("shaped", "10.2.2.1", group="g2")}
        req = request("monitor_network_bw > 50")
        wizard = make_wizard()
        assert wizard.match(req, CLIENT, sysdb, self._netdb(), {}) == []

    def test_same_group_counts_as_local(self):
        sysdb = {"10.0.0.5": record("near", "10.0.0.5", group="client-net")}
        req = request("monitor_network_bw > 50 && monitor_network_delay < 1")
        wizard = make_wizard()
        assert wizard.match(req, CLIENT, sysdb, {}, {}) == ["10.0.0.5"]

    def test_missing_metrics_disqualify(self):
        sysdb = {"10.1.1.1": record("unknown-path", "10.1.1.1", group="g1")}
        req = request("monitor_network_bw > 1")
        wizard = make_wizard()
        assert wizard.match(req, CLIENT, sysdb, {}, {}) == []


class TestSecurityVars:
    def test_secdb_overrides_probe_level(self):
        sysdb = {"10.1.1.1": record("h", "10.1.1.1", host_security_level=1.0)}
        secdb = {"h": SecurityRecord("h", level=0)}
        req = request("host_security_level >= 1")
        wizard = make_wizard()
        assert wizard.match(req, CLIENT, sysdb, {}, secdb) == []
        assert wizard.match(req, CLIENT, sysdb, {}, {}) == ["10.1.1.1"]


class TestRankingOption:
    def _sysdb(self):
        return {
            "10.1.1.1": record("small", "10.1.1.1", host_memory_free=64.0),
            "10.1.1.2": record("large", "10.1.1.2", host_memory_free=512.0),
            "10.1.1.3": record("mid", "10.1.1.3", host_memory_free=256.0),
        }

    def test_rank_descending_default(self):
        """Thesis §6 wants '3 servers with largest memory' — the rank
        option delivers it."""
        req = request("host_cpu_free > 0.5", n=2, option="rank:host_memory_free")
        wizard = make_wizard()
        out = wizard.match(req, CLIENT, self._sysdb(), {}, {})
        assert out == ["10.1.1.2", "10.1.1.3"]

    def test_rank_ascending(self):
        req = request("host_cpu_free > 0.5", n=2,
                      option="rank:host_memory_free:asc")
        wizard = make_wizard()
        out = wizard.match(req, CLIENT, self._sysdb(), {}, {})
        assert out == ["10.1.1.1", "10.1.1.3"]

    def test_unknown_option_ignored(self):
        req = request("host_cpu_free > 0.5", option="frobnicate")
        wizard = make_wizard()
        assert len(wizard.match(req, CLIENT, self._sysdb(), {}, {})) == 3


class TestWireFormats:
    def test_request_size_tracks_fields(self):
        r = WizardRequest(seq=1, server_num=3, option="", detail="a > 1")
        assert r.wire_bytes == 12 + len("a > 1")

    def test_reply_counts_servers(self):
        r = WizardReply(seq=9, servers=("10.0.0.1", "10.0.0.2"))
        assert r.server_num == 2
        assert r.wire_bytes == 8 + len("10.0.0.1") + 1 + len("10.0.0.2") + 1

class TestOptionHardening:
    """Malformed options must never raise out of match() — they count in
    option_errors and the candidates pass through unranked."""

    def _sysdb(self):
        return {
            "10.1.1.1": record("small", "10.1.1.1", host_memory_free=64.0),
            "10.1.1.2": record("large", "10.1.1.2", host_memory_free=512.0),
        }

    def _match(self, option):
        wizard = make_wizard()
        req = request("host_cpu_free > 0.5", option=option)
        out = wizard.match(req, CLIENT, self._sysdb(), {}, {})
        return wizard, out

    def test_rank_with_no_variable(self):
        wizard, out = self._match("rank:")
        assert len(out) == 2
        assert wizard.option_errors == 1

    def test_rank_unknown_variable_passes_through(self):
        wizard, out = self._match("rank:no_such_var")
        assert len(out) == 2
        assert wizard.option_errors == 1

    def test_rank_trailing_colon_tolerated(self):
        wizard, out = self._match("rank:host_memory_free:")
        assert out == ["10.1.1.2", "10.1.1.1"]  # still ranked, descending
        assert wizard.option_errors == 0

    def test_rank_string_valued_variable(self):
        """§6 extras are strings; ranking on one must not TypeError."""
        sysdb = self._sysdb()
        for rec in sysdb.values():
            rec.report.extras["host_color"] = "blue"
        wizard = make_wizard()
        req = request("host_cpu_free > 0.5", option="rank:host_color")
        out = wizard.match(req, CLIENT, sysdb, {}, {})
        assert len(out) == 2
        assert wizard.option_errors == 1

    def test_unknown_verb_counts_error(self):
        wizard, out = self._match("frobnicate")
        assert len(out) == 2
        assert wizard.option_errors == 1

    def test_empty_option_is_not_an_error(self):
        wizard, out = self._match("")
        assert len(out) == 2
        assert wizard.option_errors == 0

    def test_rank_mixed_missing_values_still_ranks(self):
        sysdb = self._sysdb()
        del sysdb["10.1.1.1"].report.values["host_memory_free"]
        wizard = make_wizard()
        req = request("host_cpu_free > 0.5", option="rank:host_memory_free")
        out = wizard.match(req, CLIENT, sysdb, {}, {})
        assert out == ["10.1.1.2", "10.1.1.1"]  # missing sorts last (desc)
        assert wizard.option_errors == 0


class TestStatusAge:
    def test_fresh_record_qualifies_and_stale_does_not(self):
        wizard = make_wizard()
        sim = wizard.sim
        sim.run(until=20.0)  # advance the clock to 20 s
        sysdb = {
            "10.1.1.1": record("fresh", "10.1.1.1"),
            "10.1.1.2": record("stale", "10.1.1.2"),
        }
        sysdb["10.1.1.1"].updated_at = 19.0   # 1 s old
        sysdb["10.1.1.2"].updated_at = 5.0    # 15 s old
        req = request("host_status_age < 10")
        out = wizard.match(req, CLIENT, sysdb, {}, {})
        assert out == ["10.1.1.1"]

    def test_age_can_rank(self):
        wizard = make_wizard()
        wizard.sim.run(until=30.0)
        sysdb = {
            "10.1.1.1": record("older", "10.1.1.1"),
            "10.1.1.2": record("newer", "10.1.1.2"),
        }
        sysdb["10.1.1.1"].updated_at = 10.0
        sysdb["10.1.1.2"].updated_at = 29.0
        req = request("host_cpu_free > 0.5", option="rank:host_status_age:asc")
        out = wizard.match(req, CLIENT, sysdb, {}, {})
        assert out == ["10.1.1.2", "10.1.1.1"]


class TestCandidateOrderMemo:
    """The REPRO500 fix: sorted scan order is memoized per DB epoch."""

    def test_repeat_requests_reuse_the_sorted_order(self):
        wizard = make_wizard()
        sysdb = {f"10.1.1.{i}": record(f"s{i}", f"10.1.1.{i}")
                 for i in range(5, 0, -1)}
        first = wizard.match(request("host_cpu_free > 0.5"), CLIENT,
                             sysdb, {}, {})
        assert wizard.db_sort_reuses == 0
        second = wizard.match(request("host_cpu_free > 0.5"), CLIENT,
                              sysdb, {}, {})
        assert second == first == sorted(sysdb)[:5]
        assert wizard.db_sort_reuses == 1

    def test_key_change_invalidates_the_memo(self):
        wizard = make_wizard()
        sysdb = {"10.1.1.1": record("a", "10.1.1.1")}
        wizard.match(request("host_cpu_free > 0.5"), CLIENT, sysdb, {}, {})
        sysdb["10.1.1.2"] = record("b", "10.1.1.2")
        out = wizard.match(request("host_cpu_free > 0.5"), CLIENT,
                           sysdb, {}, {})
        assert out == ["10.1.1.1", "10.1.1.2"]
        assert wizard.db_sort_reuses == 0

    def test_value_update_without_key_change_reuses(self):
        wizard = make_wizard()
        sysdb = {
            "10.1.1.1": record("a", "10.1.1.1"),
            "10.1.1.2": record("b", "10.1.1.2"),
        }
        wizard.match(request("host_cpu_free > 0.5"), CLIENT, sysdb, {}, {})
        sysdb["10.1.1.1"] = record("a", "10.1.1.1", host_cpu_free=0.1)
        out = wizard.match(request("host_cpu_free > 0.5"), CLIENT,
                           sysdb, {}, {})
        assert out == ["10.1.1.2"]
        assert wizard.db_sort_reuses == 1

    def test_preferred_partition_order_is_first_seen(self):
        """The REPRO505 fix (dict-backed membership) must keep the old
        list semantics: preferred servers first, stable otherwise."""
        wizard = make_wizard()
        sysdb = {
            "10.1.1.1": record("plain", "10.1.1.1"),
            "10.1.1.2": record("starred", "10.1.1.2"),
        }
        req = request("(host_cpu_free > 0.5) && "
                      "(user_preferred_host1 = starred)")
        out = wizard.match(req, CLIENT, sysdb, {}, {})
        assert out == ["10.1.1.2", "10.1.1.1"]
