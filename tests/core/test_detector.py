"""Unit tests for the adaptive suspicion detector (gray failures):
EWMA mean/variance, P² incremental quantiles, and the phi-accrual
suspicion score built from them."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.detector import (
    Ewma,
    IncrementalQuantile,
    PHI_MAX,
    SuspicionDetector,
)


class TestEwma:
    def test_first_sample_is_the_mean(self):
        e = Ewma()
        e.record(3.0)
        assert e.mean == 3.0
        assert e.var == 0.0
        assert e.n == 1

    def test_mean_tracks_a_level_shift(self):
        e = Ewma(alpha=0.25)
        for _ in range(50):
            e.record(1.0)
        assert e.mean == pytest.approx(1.0)
        for _ in range(50):
            e.record(5.0)
        # after many samples at the new level the mean has converged
        assert e.mean == pytest.approx(5.0, abs=1e-3)

    def test_constant_series_has_zero_variance(self):
        e = Ewma()
        for _ in range(20):
            e.record(2.5)
        assert e.var == pytest.approx(0.0)
        assert e.std == 0.0

    def test_variance_is_positive_for_noisy_series(self):
        e = Ewma(alpha=0.1)
        rng = random.Random(5)
        for _ in range(500):
            e.record(rng.gauss(10.0, 2.0))
        assert e.mean == pytest.approx(10.0, rel=0.15)
        assert 0.5 < e.std < 4.0

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            Ewma(alpha=1.5)


class TestIncrementalQuantile:
    def test_value_before_any_sample_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            IncrementalQuantile().value()

    def test_small_window_uses_nearest_rank(self):
        q = IncrementalQuantile(p=0.5)
        q.record(3.0)
        assert q.value() == 3.0
        q.record(1.0)
        # ceil(0.5 * 2) - 1 = 0 -> the lower of the two
        assert q.value() == 1.0

    def test_converges_to_true_quantile(self):
        rng = random.Random(11)
        samples = [rng.uniform(0.0, 1.0) for _ in range(5000)]
        for p in (0.5, 0.9, 0.95):
            q = IncrementalQuantile(p=p)
            for x in samples:
                q.record(x)
            exact = sorted(samples)[int(math.ceil(p * len(samples))) - 1]
            assert q.value() == pytest.approx(exact, abs=0.03), f"p={p}"

    def test_monotone_in_p(self):
        rng = random.Random(2)
        samples = [rng.expovariate(1.0) for _ in range(2000)]
        estimates = []
        for p in (0.5, 0.75, 0.95):
            q = IncrementalQuantile(p=p)
            for x in samples:
                q.record(x)
            estimates.append(q.value())
        assert estimates == sorted(estimates)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError, match="quantile"):
            IncrementalQuantile(p=0.0)
        with pytest.raises(ValueError, match="quantile"):
            IncrementalQuantile(p=1.0)


class TestSuspicionDetector:
    def warm(self, det, peer="a", value=0.1, n=10):
        for _ in range(n):
            det.record(peer, value)

    def test_cold_peer_has_no_baseline_and_zero_phi(self):
        det = SuspicionDetector(min_samples=5)
        assert det.baseline("a") is None
        assert det.phi("a", 100.0) == 0.0
        det.record("a", 0.1)
        assert det.samples("a") == 1
        assert det.baseline("a") is None  # still below min_samples
        assert det.phi("a", 100.0) == 0.0

    def test_baseline_appears_at_min_samples(self):
        det = SuspicionDetector(min_samples=3)
        self.warm(det, n=3, value=0.2)
        assert det.baseline("a") == pytest.approx(0.2)
        assert det.mean("a") == pytest.approx(0.2)

    def test_rejects_negative_samples(self):
        det = SuspicionDetector()
        with pytest.raises(ValueError, match="negative latency"):
            det.record("a", -0.1)

    def test_phi_grows_with_elapsed(self):
        det = SuspicionDetector(min_samples=5)
        self.warm(det, value=0.1, n=20)
        phis = [det.phi("a", t) for t in (0.1, 0.2, 0.5, 1.0, 5.0)]
        assert phis == sorted(phis)
        assert phis[0] < 1.0        # waiting one baseline RTT is normal
        assert phis[-1] == PHI_MAX  # 50 baselines of silence is not

    def test_phi_scale_is_a_probability(self):
        # with mean 1, sigma floored to 0.2: phi(1.0) is the median wait
        det = SuspicionDetector(min_samples=5)
        self.warm(det, value=1.0, n=20)
        assert det.phi("a", 1.0) == pytest.approx(-math.log10(0.5))

    def test_threshold_adapts_to_the_measured_baseline(self):
        det = SuspicionDetector(min_samples=5)
        self.warm(det, "fast", value=0.05, n=20)
        self.warm(det, "slow", value=2.0, n=20)
        # the same suspicion level is reached at proportionate waits
        assert det.phi("fast", 0.5) > 3.0
        assert det.phi("slow", 0.5) < 0.01

    def test_forget_resets_the_peer(self):
        det = SuspicionDetector(min_samples=2)
        self.warm(det, n=5)
        assert det.baseline("a") is not None
        det.forget("a")
        assert det.baseline("a") is None
        assert det.samples("a") == 0
        assert det.mean("a") == 0.0

    def test_slow_peers_is_relative(self):
        det = SuspicionDetector(min_samples=3)
        self.warm(det, "a", value=0.1, n=5)
        assert det.slow_peers(["a", "b"]) == set()  # one warm peer: no call
        self.warm(det, "b", value=1.0, n=5)
        assert det.slow_peers(["a", "b"], demote_factor=3.0) == {"b"}
        assert det.slow_peers(["a", "b"], demote_factor=20.0) == set()

    def test_uniformly_slow_fleet_demotes_nobody(self):
        det = SuspicionDetector(min_samples=3)
        self.warm(det, "a", value=2.0, n=5)
        self.warm(det, "b", value=2.2, n=5)
        assert det.slow_peers(["a", "b"]) == set()
