"""Tests for the transmitter/receiver pair in both operating modes."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core import (
    Config,
    MSG_NETDB,
    MSG_SECDB,
    MSG_SYSDB,
    Mode,
    NetMetric,
    NetStatusRecord,
    Receiver,
    SecurityRecord,
    ServerStatusRecord,
    ServerStatusReport,
    Transmitter,
)
from tests.conftest import run_process


def seed_monitor_shm(host, cfg, tag):
    """Put recognisable data in the monitor-side segments."""
    report = ServerStatusReport(host=f"srv-{tag}", addr=f"10.0.{tag}.1",
                                group=f"g{tag}", values={"host_cpu_free": 0.5})
    host.shm.segment(cfg.shm.monitor_system).write(
        {report.addr: ServerStatusRecord(report, updated_at=0.0)}
    )
    host.shm.segment(cfg.shm.monitor_network).write(
        {f"g{tag}": NetStatusRecord(group=f"g{tag}",
                                    metrics={"gx": NetMetric(1.0, 90.0)})}
    )
    host.shm.segment(cfg.shm.monitor_security).write(
        {f"srv-{tag}": SecurityRecord(f"srv-{tag}", level=tag)}
    )


def make_world(mode, n_monitors=1):
    cluster = Cluster(seed=7)
    wizard_host = cluster.add_host("wizard")
    monitors = []
    for i in range(n_monitors):
        m = cluster.add_host(f"mon{i}")
        cluster.link(m, wizard_host)
        monitors.append(m)
    cluster.finalize()
    cfg = Config(transmit_interval=1.0, mode=mode)
    receiver = Receiver(cluster.sim, wizard_host.stack, wizard_host.shm, cfg)
    transmitters = []
    for i, m in enumerate(monitors):
        seed_monitor_shm(m, cfg, i + 1)
        transmitters.append(Transmitter(
            cluster.sim, m.stack, m.shm,
            receiver_addr=wizard_host.addr, config=cfg, mode=mode,
        ))
    return cluster, cfg, receiver, transmitters, monitors


class TestCentralized:
    def test_push_populates_wizard_segments(self):
        cluster, cfg, receiver, txs, _ = make_world(Mode.CENTRALIZED)
        receiver.start()
        txs[0].start()
        cluster.run(until=3.0)
        sysdb = receiver.database(MSG_SYSDB)
        assert "10.0.1.1" in sysdb
        netdb = receiver.database(MSG_NETDB)
        assert netdb["g1"].metrics["gx"].bw_mbps == 90.0
        secdb = receiver.database(MSG_SECDB)
        assert secdb["srv-1"].level == 1
        assert txs[0].snapshots_sent >= 2

    def test_two_sources_merge(self):
        cluster, cfg, receiver, txs, _ = make_world(Mode.CENTRALIZED, n_monitors=2)
        receiver.start()
        for tx in txs:
            tx.start()
        cluster.run(until=3.0)
        sysdb = receiver.database(MSG_SYSDB)
        assert {"10.0.1.1", "10.0.2.1"} <= set(sysdb)
        secdb = receiver.database(MSG_SECDB)
        assert secdb["srv-1"].level == 1 and secdb["srv-2"].level == 2

    def test_update_replaces_own_contribution_only(self):
        cluster, cfg, receiver, txs, monitors = make_world(
            Mode.CENTRALIZED, n_monitors=2)
        receiver.start()
        for tx in txs:
            tx.start()
        cluster.run(until=2.5)
        # monitor 1's server set shrinks to empty
        monitors[0].shm.segment(cfg.shm.monitor_system).write({})
        cluster.run(until=5.0)
        sysdb = receiver.database(MSG_SYSDB)
        assert "10.0.1.1" not in sysdb   # source 1 gone
        assert "10.0.2.1" in sysdb       # source 2 untouched

    def test_push_survives_receiver_starting_late(self):
        cluster, cfg, receiver, txs, _ = make_world(Mode.CENTRALIZED)
        txs[0].start()  # receiver not yet listening: connects fail quietly

        def late():
            yield cluster.sim.timeout(3.0)
            receiver.start()

        cluster.sim.process(late())
        cluster.run(until=8.0)
        assert "10.0.1.1" in receiver.database(MSG_SYSDB)

    def test_centralized_requires_receiver_addr(self):
        cluster = Cluster(seed=8)
        m = cluster.add_host("m")
        other = cluster.add_host("o")
        cluster.link(m, other)
        cluster.finalize()
        with pytest.raises(ValueError):
            Transmitter(cluster.sim, m.stack, m.shm, receiver_addr=None,
                        mode=Mode.CENTRALIZED)


class TestDistributed:
    def test_no_traffic_until_pull(self):
        cluster, cfg, receiver, txs, _ = make_world(Mode.DISTRIBUTED)
        txs[0].start()
        cluster.run(until=5.0)
        assert txs[0].snapshots_sent == 0
        assert receiver.database(MSG_SYSDB) == {}

    def test_pull_fetches_snapshot(self):
        cluster, cfg, receiver, txs, monitors = make_world(Mode.DISTRIBUTED)
        txs[0].start()
        receiver.add_transmitter(monitors[0].addr)

        def p():
            yield from receiver.pull_all()
            return receiver.database(MSG_SYSDB)

        sysdb = run_process(cluster.sim, p(), until=30.0)
        assert "10.0.1.1" in sysdb
        assert txs[0].snapshots_sent == 1

    def test_repeated_pulls_reuse_connection(self):
        cluster, cfg, receiver, txs, monitors = make_world(Mode.DISTRIBUTED)
        txs[0].start()
        receiver.add_transmitter(monitors[0].addr)

        def p():
            yield from receiver.pull_all()
            yield from receiver.pull_all()
            return len(receiver._pull_conns)

        conns = run_process(cluster.sim, p(), until=30.0)
        assert conns == 1
        assert txs[0].snapshots_sent == 2

    def test_pull_reflects_fresh_monitor_state(self):
        cluster, cfg, receiver, txs, monitors = make_world(Mode.DISTRIBUTED)
        txs[0].start()
        receiver.add_transmitter(monitors[0].addr)

        def p():
            yield from receiver.pull_all()
            first = set(receiver.database(MSG_SYSDB))
            report = ServerStatusReport(host="late", addr="10.9.9.9",
                                        group="g1", values={})
            seg = monitors[0].shm.segment(cfg.shm.monitor_system)
            db = dict(seg.read())
            db["10.9.9.9"] = ServerStatusRecord(report, updated_at=cluster.sim.now)
            seg.write(db)
            yield from receiver.pull_all()
            return first, set(receiver.database(MSG_SYSDB))

        first, second = run_process(cluster.sim, p(), until=30.0)
        assert "10.9.9.9" not in first
        assert "10.9.9.9" in second

class TestPushHardening:
    def test_push_loop_survives_receiver_crash_and_restart(self):
        """Receiver dies mid-run: the push loop must not crash, and must
        resume delivering snapshots once the receiver is back."""
        cluster, cfg, receiver, (tx,), _ = make_world(Mode.CENTRALIZED)
        receiver.start()
        tx.start()

        def scenario():
            yield cluster.sim.timeout(3.0)
            # crash the receiver abruptly: no FIN ever reaches the
            # transmitter — it discovers via RST on its next push
            wiz_stack = receiver.stack
            for conn in list(wiz_stack.tcp.conns.values()):
                conn.abort()
            for lsn in list(wiz_stack.tcp.listeners.values()):
                lsn.close()
            receiver.stop()
            yield cluster.sim.timeout(5.0)
            receiver.start()
            yield cluster.sim.timeout(8.0)

        run_process(cluster.sim, scenario(), until=60.0)
        # the RST from the dead receiver is detected at the top of the
        # push loop: the stale conn is dropped and a fresh one dialled
        assert tx.connects >= 2
        # snapshots flowed again after the restart
        assert receiver.staleness(MSG_SYSDB) < 3.0

    def test_staleness_tracks_last_apply(self):
        cluster, cfg, receiver, (tx,), _ = make_world(Mode.CENTRALIZED)
        assert receiver.staleness(MSG_SYSDB) == float("inf")
        receiver.start()
        tx.start()

        def scenario():
            yield cluster.sim.timeout(3.0)
            fresh = receiver.staleness(MSG_SYSDB)
            tx.stop()
            yield cluster.sim.timeout(10.0)
            return fresh, receiver.staleness(MSG_SYSDB)

        fresh, stale = run_process(cluster.sim, scenario(), until=30.0)
        assert fresh <= 1.0
        assert stale >= 9.0


class TestPullHardening:
    def test_unreachable_transmitter_counts_pull_failure(self):
        cluster, cfg, receiver, _, monitors = make_world(Mode.DISTRIBUTED)
        receiver.add_transmitter(monitors[0].addr)  # nothing listens there

        def p():
            yield from receiver.pull_all()

        run_process(cluster.sim, p(), until=30.0)
        assert receiver.pull_failures == 1

    def test_wedged_transmitter_times_out_not_stalls(self):
        """A transmitter that accepts but never answers must cost at most
        config.pull_timeout, then be dropped (wizard serves stale data)."""
        cluster, cfg, receiver, _, monitors = make_world(Mode.DISTRIBUTED)
        mon = monitors[0]
        receiver.add_transmitter(mon.addr)

        def black_hole():
            lsn = mon.stack.tcp.listen(cfg.ports.transmitter)
            while True:
                yield lsn.accept()  # accept and say nothing

        cluster.sim.process(black_hole())
        t = {}

        def p():
            t["start"] = cluster.sim.now
            yield from receiver.pull_all()
            t["end"] = cluster.sim.now

        run_process(cluster.sim, p(), until=30.0)
        assert receiver.pull_timeouts == 1
        assert t["end"] - t["start"] == pytest.approx(cfg.pull_timeout, abs=0.1)
        assert mon.addr not in receiver._pull_conns  # dropped for re-dial
