"""Tests for the security monitor and its pluggable sources."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core import (
    DummySecurityLog,
    FingerprintScanner,
    SecurityMonitor,
)
from repro.host import Machine


class TestDummySecurityLog:
    def test_parses_host_level_lines(self):
        log = DummySecurityLog("mimas 2\ntelesto 1\n")
        assert log.collect() == [("mimas", 2), ("telesto", 1)]

    def test_comments_and_blanks_ignored(self):
        log = DummySecurityLog("# header\n\nmimas 2  # trusted\n")
        assert log.collect() == [("mimas", 2)]

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            DummySecurityLog("mimas\n").collect()

    def test_set_text_updates(self):
        log = DummySecurityLog("a 1")
        log.set_text("b 2")
        assert log.collect() == [("b", 2)]


class TestFingerprintScanner:
    def test_maps_os_to_level(self, sim):
        machines = [
            Machine(sim, "old", 1000, 1 << 20, os_name="Redhat Linux 7.3 (2.4)"),
            Machine(sim, "new", 1000, 1 << 20, os_name="Debian (Linux 2.6)"),
            Machine(sim, "unknown", 1000, 1 << 20, os_name="BeOS"),
        ]
        scanner = FingerprintScanner(machines)
        levels = dict(scanner.collect())
        assert levels == {"old": 2, "new": 3, "unknown": 0}


class TestSecurityMonitorDaemon:
    def make(self, sim, source, interval=1.0):
        cluster = Cluster(sim)
        host = cluster.add_host("monitor")
        other = cluster.add_host("x")
        cluster.link(host, other)
        cluster.finalize()
        return SecurityMonitor(sim, host.shm, source, interval=interval)

    def test_publishes_levels(self, sim):
        mon = self.make(sim, DummySecurityLog("mimas 2\ntelesto 1"))
        mon.start()
        sim.run(until=0.5)
        db = mon.database()
        assert db["mimas"].level == 2
        assert db["telesto"].level == 1

    def test_log_update_propagates(self, sim):
        log = DummySecurityLog("mimas 2")
        mon = self.make(sim, log, interval=1.0)
        mon.start()
        sim.run(until=0.5)
        log.set_text("mimas 0")  # compromised!
        sim.run(until=2.0)
        assert mon.database()["mimas"].level == 0

    def test_bad_source_counts_error_and_keeps_running(self, sim):
        log = DummySecurityLog("good 1")
        mon = self.make(sim, log, interval=1.0)
        mon.start()
        sim.run(until=0.5)
        log.set_text("broken line without level_number x y")
        sim.run(until=2.0)
        assert mon.errors >= 1
        log.set_text("good 3")
        sim.run(until=4.0)
        assert mon.database()["good"].level == 3

    def test_stop(self, sim):
        mon = self.make(sim, DummySecurityLog("a 1"))
        mon.start()
        sim.run(until=0.5)
        mon.stop()
        scans = mon.scans
        sim.run(until=5.0)
        assert mon.scans == scans
