"""Additional network-monitor coverage: SLoPS search, sequential probing,
stale-reply discipline of the client library."""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core import Config, NetworkMonitor, pathload_estimate
from repro.net import MBPS
from tests.conftest import run_process


class TestPathloadEstimate:
    def test_brackets_available_bandwidth(self):
        cluster = Cluster(seed=81)
        a = cluster.add_host("a")
        b = cluster.add_host("b")
        cluster.link(a, b, rate_bps=50 * MBPS)
        cluster.finalize()

        def p():
            return (yield from pathload_estimate(
                a.stack, b.addr, lo_bps=1e6, hi_bps=400e6, iterations=10))

        lo, hi = run_process(cluster.sim, p(), until=600.0)
        # SLoPS detects the rate at which queues *visibly* build within a
        # short stream, which sits somewhat above the raw capacity — the
        # search must land within a factor of 2 of the 50 Mbps link
        assert 50e6 * 0.5 < lo < 50e6 * 2.0
        assert 50e6 * 0.5 < hi < 50e6 * 2.5
        assert lo <= hi

    def test_converges_monotonically(self):
        cluster = Cluster(seed=82)
        a = cluster.add_host("a")
        b = cluster.add_host("b")
        cluster.link(a, b, rate_bps=100 * MBPS)
        cluster.finalize()

        def p():
            return (yield from pathload_estimate(
                a.stack, b.addr, lo_bps=1e6, hi_bps=1e9, iterations=8))

        lo, hi = run_process(cluster.sim, p(), until=600.0)
        assert hi / lo < 1e9 / 1e6  # the bracket actually narrowed


class TestSequentialProbing:
    def test_netmon_probes_one_peer_at_a_time(self):
        """Thesis §3.3.3: 'Multiple probes should not run simultaneously.'
        With one prober socket active at a time, the monitor's outstanding
        UDP probe count never exceeds one — we check via the tap count."""
        cluster = Cluster(seed=83)
        mon = cluster.add_host("mon")
        p1 = cluster.add_host("p1")
        p2 = cluster.add_host("p2")
        sw = cluster.add_switch("sw")
        for h in (mon, p1, p2):
            cluster.link(h, sw)
        cluster.finalize()
        cfg = Config(netmon_interval=0.5, netmon_samples=2)
        nm = NetworkMonitor(cluster.sim, mon.stack, mon.shm, "g0", cfg)
        nm.add_peer("g1", p1.addr)
        nm.add_peer("g2", p2.addr)
        # at no instant should the monitor hold more than one probing
        # socket (measure_rtt opens one per in-flight probe)
        max_ports = {"n": 0}

        def watcher():
            while True:
                live = len(mon.stack.udp_ports)
                max_ports["n"] = max(max_ports["n"], live)
                yield cluster.sim.timeout(0.001)

        cluster.sim.process(watcher())
        nm.start()
        cluster.run(until=4.0)
        nm.stop()
        assert "g1" in nm.table().metrics
        assert "g2" in nm.table().metrics
        assert max_ports["n"] <= 1


class TestClientStaleReplies:
    def test_wrong_sequence_reply_ignored(self):
        """A stale reply with the wrong sequence number must be discarded
        and the matching one accepted (thesis §3.6.2 step 3)."""
        from repro.core import SmartClient, WizardReply

        cluster = Cluster(seed=84)
        client_host = cluster.add_host("client")
        fake_wizard = cluster.add_host("wizard")
        cluster.link(client_host, fake_wizard)
        cluster.finalize()
        cfg = Config(client_timeout=2.0)
        client = SmartClient(cluster.sim, client_host.stack,
                             wizard_addr=fake_wizard.addr, config=cfg)

        def fake_daemon():
            sock = fake_wizard.stack.udp_socket(cfg.ports.wizard)
            dgram = yield sock.recv()
            request = dgram.payload
            # first a stale reply with a bogus sequence number...
            stale = WizardReply(seq=request.seq ^ 0xFFFF, servers=("9.9.9.9",))
            sock.sendto(dgram.src, dgram.sport, size=stale.wire_bytes,
                        payload=stale)
            yield cluster.sim.timeout(0.05)
            # ...then the genuine one
            real = WizardReply(seq=request.seq, servers=("10.0.0.1",))
            sock.sendto(dgram.src, dgram.sport, size=real.wire_bytes,
                        payload=real)

        cluster.sim.process(fake_daemon())

        def p():
            reply = yield from client.request_servers("a > 0", 1)
            return reply.servers

        assert run_process(cluster.sim, p(), until=30.0) == ["10.0.0.1"]
