"""Tests for the system monitor: upsert, staleness expiry, rejoin."""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core import Config, ServerProbe, SystemMonitor


def make_world(n_servers=2, interval=1.0):
    cluster = Cluster(seed=3)
    monitor_host = cluster.add_host("monitor")
    servers = []
    for i in range(n_servers):
        s = cluster.add_host(f"s{i}")
        cluster.link(s, monitor_host)
        servers.append(s)
    cluster.finalize()
    cfg = Config(probe_interval=interval)
    sysmon = SystemMonitor(cluster.sim, monitor_host.stack, monitor_host.shm, cfg)
    probes = [
        ServerProbe(cluster.sim, s.procfs, s.stack,
                    monitor_addr=monitor_host.addr, group="lab", config=cfg)
        for s in servers
    ]
    return cluster, sysmon, probes, servers


class TestCollection:
    def test_all_probes_appear_in_database(self):
        cluster, sysmon, probes, servers = make_world(3)
        sysmon.start()
        for p in probes:
            p.start()
        cluster.run(until=2.5)
        db = sysmon.database()
        assert {rec.host for rec in db.values()} == {"s0", "s1", "s2"}

    def test_records_update_in_place(self):
        cluster, sysmon, probes, _ = make_world(1)
        sysmon.start()
        probes[0].start()
        cluster.run(until=1.5)
        first_stamp = list(sysmon.database().values())[0].updated_at
        cluster.run(until=3.5)
        db = sysmon.database()
        assert len(db) == 1  # updated, not duplicated
        assert list(db.values())[0].updated_at > first_stamp

    def test_malformed_report_counted_not_fatal(self):
        cluster, sysmon, _, servers = make_world(1)
        sysmon.start()
        sock = servers[0].stack.udp_socket()
        sock.sendto("monitor", 1111, size=20, payload="garbage without pipes")
        cluster.run(until=1.0)
        assert sysmon.parse_errors == 1
        assert sysmon.database() == {}


class TestExpiry:
    def test_dead_probe_expires_after_miss_limit(self):
        cluster, sysmon, probes, _ = make_world(1, interval=1.0)
        sysmon.start()
        probes[0].start()
        cluster.run(until=2.5)
        assert len(sysmon.database()) == 1
        probes[0].stop()
        # miss limit 3 at 1 s interval: gone a little after t ~ 2.5+3+1
        cluster.run(until=8.0)
        assert sysmon.database() == {}
        assert sysmon.expired == 1

    def test_rejoin_after_expiry(self):
        """Servers may leave and rejoin at any time (thesis §3.2.2)."""
        cluster, sysmon, probes, _ = make_world(1, interval=1.0)
        sysmon.start()
        probes[0].start()
        cluster.run(until=2.0)
        probes[0].stop()
        cluster.run(until=9.0)
        assert sysmon.database() == {}
        probes[0].start()
        cluster.run(until=11.0)
        assert len(sysmon.database()) == 1

    def test_live_probe_never_expires(self):
        cluster, sysmon, probes, _ = make_world(1, interval=1.0)
        sysmon.start()
        probes[0].start()
        cluster.run(until=20.0)
        assert len(sysmon.database()) == 1
        assert sysmon.expired == 0

class TestSessionPruning:
    def test_dead_tcp_sessions_pruned_on_accept(self):
        """Short-lived TCP reporters must not grow _tcp_sessions without
        bound — finished session processes are pruned at accept time."""
        cluster, sysmon, probes, servers = make_world(1)
        sysmon.start()
        server = servers[0]
        wire = probes[0].scan().to_wire()

        def reporter():
            for _ in range(6):
                conn = yield from server.stack.tcp.connect(
                    "monitor", sysmon.config.ports.system_monitor)
                conn.send(wire, len(wire))
                yield cluster.sim.timeout(0.2)
                conn.close()
                yield cluster.sim.timeout(0.2)

        cluster.sim.process(reporter())
        cluster.run(until=5.0)
        assert sysmon.tcp_reports_received == 6
        # all six connected, but dead sessions were reaped along the way
        assert len(sysmon._tcp_sessions) <= 2


class TestRestartability:
    def test_monitor_restarts_on_same_port(self):
        """stop() must release the UDP port so a restarted monitor can
        bind again (crash/restart fault path)."""
        cluster, sysmon, probes, _ = make_world(1)
        sysmon.start()
        probes[0].start()
        cluster.run(until=1.5)
        assert sysmon.database()
        sysmon.stop()
        cluster.run(until=2.0)  # deliver the interrupts
        sysmon.start()          # would raise PortInUse without the close
        cluster.run(until=4.0)
        assert sysmon.reports_received > 1
