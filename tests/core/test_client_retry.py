"""SmartClient failure hardening: backoff timing, stale-reply discard,
dead-server quarantine."""

from __future__ import annotations

import random

from repro.cluster import Cluster, Deployment
from repro.core import Config, SmartClient
from repro.core.wizard import WizardReply, WizardRequest
from tests.conftest import run_process


def small_deployment(n_servers=3, **config_kwargs):
    cluster = Cluster(seed=11)
    wizard_host = cluster.add_host("wizard")
    client_host = cluster.add_host("client")
    cluster.link(client_host, wizard_host)
    servers = []
    for i in range(n_servers):
        s = cluster.add_host(f"srv{i}")
        cluster.link(s, wizard_host)
        servers.append(s)
    cluster.finalize()
    cfg = Config(probe_interval=0.5, transmit_interval=0.5,
                 client_timeout=1.0, **config_kwargs)
    dep = Deployment(cluster, wizard_host=wizard_host, config=cfg)
    dep.add_group("lab", monitor_host=wizard_host, servers=servers)
    dep.start()
    return cluster, dep, client_host, servers


class TestRetryBackoff:
    def test_backoff_sleeps_between_retries(self):
        cluster, dep, client_host, _ = small_deployment(
            client_retries=3, client_backoff_base=0.2, client_backoff_cap=2.0)
        dep.wizard.stop()  # every request will time out
        client = dep.client_for(client_host)

        def p():
            reply = yield from client.request_servers("host_cpu_free > 0", 1)
            return reply

        reply = run_process(cluster.sim, p(), until=60.0)
        assert reply.servers == []
        assert client.timeouts == 4
        # one sleep per retry, each inside the decorrelated-jitter window
        assert len(client.backoff_history) == 3
        assert all(0.2 <= b <= 2.0 for b in client.backoff_history)

    def test_total_time_includes_backoffs(self):
        cluster, dep, client_host, _ = small_deployment(
            client_retries=2, client_backoff_base=0.5, client_backoff_cap=5.0)
        dep.wizard.stop()
        client = dep.client_for(client_host)
        span = {}

        def p():
            span["t0"] = cluster.sim.now
            yield from client.request_servers("host_cpu_free > 0", 1)
            span["t1"] = cluster.sim.now

        run_process(cluster.sim, p(), until=60.0)
        elapsed = span["t1"] - span["t0"]
        # 3 timeouts of 1 s plus the recorded backoff sleeps
        expected = 3 * 1.0 + sum(client.backoff_history)
        assert abs(elapsed - expected) < 1e-6

    def test_backoff_deterministic_for_seeded_rng(self):
        histories = []
        for _ in range(2):
            cluster, dep, client_host, _ = small_deployment(
                client_retries=3, client_backoff_base=0.2,
                client_backoff_cap=2.0)
            dep.wizard.stop()
            client = SmartClient(
                cluster.sim, client_host.stack,
                wizard_addr=dep.wizard_host.addr, config=dep.config,
                rng=random.Random(1234),
            )

            def p(c=client):
                yield from c.request_servers("host_cpu_free > 0", 1)

            run_process(cluster.sim, p(), until=60.0)
            histories.append(list(client.backoff_history))
        assert histories[0] == histories[1]


class TestStaleReplies:
    def test_mismatched_seq_is_discarded(self):
        """A wizard stand-in that answers with the wrong sequence number:
        the client must ignore the reply, time out, and retry."""
        cluster = Cluster(seed=5)
        wiz = cluster.add_host("wiz")
        cli = cluster.add_host("cli")
        cluster.link(cli, wiz)
        cluster.finalize()
        cfg = Config(client_timeout=1.0, client_retries=1)

        def bogus_wizard():
            sock = wiz.stack.udp_socket(cfg.ports.wizard)
            while True:
                dgram = yield sock.recv()
                request: WizardRequest = dgram.payload
                stale = WizardReply(seq=request.seq + 1, servers=("10.9.9.9",))
                sock.sendto(dgram.src, dgram.sport,
                            size=stale.wire_bytes, payload=stale)

        cluster.sim.process(bogus_wizard())
        client = SmartClient(cluster.sim, cli.stack,
                             wizard_addr=wiz.addr, config=cfg)

        def p():
            reply = yield from client.request_servers("host_cpu_free > 0", 1)
            return reply

        reply = run_process(cluster.sim, p(), until=30.0)
        assert reply.servers == []          # stale replies never accepted
        assert client.timeouts == 2         # initial attempt + 1 retry
        assert client.requests_sent == 2


class TestQuarantine:
    def test_connect_failure_quarantines_host(self):
        cluster, dep, client_host, servers = small_deployment(
            quarantine_period=10.0)
        for s in servers[:2]:
            s.stack.tcp.listen(9000)  # srv2 runs no service
        client = dep.client_for(client_host)

        def p():
            yield cluster.sim.timeout(3.0)
            conns = yield from client.smart_sockets("host_cpu_free > 0.5", 3)
            return conns, client.quarantined()

        conns, quarantined = run_process(cluster.sim, p(), until=60.0)
        assert len(conns) == 2
        assert client.connect_failures == 1
        assert quarantined == {servers[2].addr}

    def test_quarantined_host_connects_last(self):
        cluster, dep, client_host, servers = small_deployment(
            quarantine_period=10.0)
        client = dep.client_for(client_host)
        bad = servers[1].addr
        client._note_connect_failure(bad)
        order = client._deprioritise([s.addr for s in servers])
        assert order[-1] == bad
        assert sorted(order) == sorted(s.addr for s in servers)

    def test_quarantine_expires(self):
        cluster, dep, client_host, servers = small_deployment(
            quarantine_period=2.0)
        client = dep.client_for(client_host)
        bad = servers[0].addr
        client._note_connect_failure(bad)
        assert client.quarantined() == {bad}

        def p():
            yield cluster.sim.timeout(2.5)

        run_process(cluster.sim, p(), until=10.0)
        assert client.quarantined() == set()
        # expired sentences are purged on the next deprioritise pass
        client._deprioritise([bad])
        assert client._quarantine == {}
