"""Tests for the network monitor and the bandwidth estimators."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core import (
    Config,
    NetworkMonitor,
    estimate_bandwidth,
    measure_rtt,
    pipechar_estimate,
    rtt_curve,
)
from repro.net import MBPS
from tests.conftest import run_process


def make_path(rate_mbps=100.0, shaper_mbps=None, seed=4):
    cluster = Cluster(seed=seed)
    a = cluster.add_host("a")
    b = cluster.add_host("b")
    cluster.link(a, b, rate_bps=rate_mbps * MBPS, delay=100e-6)
    cluster.finalize()
    if shaper_mbps:
        from repro.apps import shape_host_egress

        shape_host_egress(a, shaper_mbps)
    return cluster, a, b


class TestMeasureRtt:
    def test_returns_rtt(self):
        cluster, a, b = make_path()

        def p():
            rtt = yield from measure_rtt(a.stack, b.addr, 1000)
            return rtt

        rtt = run_process(cluster.sim, p())
        assert 0 < rtt < 0.01

    def test_timeout_returns_none(self):
        cluster, a, b = make_path()
        # break the route so nothing ever comes back
        a.node.routes = {}

        def p():
            rtt = yield from measure_rtt(a.stack, b.addr, 1000, timeout=0.2)
            return (rtt, cluster.sim.now)

        assert run_process(cluster.sim, p()) == (None, 0.2)

    def test_cleans_up_socket_and_tap(self):
        cluster, a, b = make_path()
        before_ports = len(a.stack.udp_ports)
        before_taps = len(a.stack.icmp_taps)

        def p():
            yield from measure_rtt(a.stack, b.addr, 500)

        run_process(cluster.sim, p())
        assert len(a.stack.udp_ports) == before_ports
        assert len(a.stack.icmp_taps) == before_taps


class TestRttCurve:
    def test_monotone_nondecreasing_on_clean_path(self):
        cluster, a, b = make_path()

        def p():
            return (yield from rtt_curve(a.stack, b.addr, [100, 1000, 3000, 6000]))

        series = run_process(cluster.sim, p())
        rtts = [t for _, t in series]
        assert rtts == sorted(rtts)

    def test_knee_at_mtu(self):
        from repro.bench import knee_slopes

        cluster, a, b = make_path()

        def p():
            return (yield from rtt_curve(a.stack, b.addr, range(100, 6001, 100)))

        series = run_process(cluster.sim, p())
        below, above = knee_slopes(series, 1500)
        assert below > 2 * above  # the thesis' headline observation


class TestBandwidthEstimate:
    def test_estimates_capacity_on_clean_path(self):
        cluster, a, b = make_path(rate_mbps=100.0)

        def p():
            return (yield from estimate_bandwidth(a.stack, b.addr, samples=3))

        est = run_process(cluster.sim, p())
        assert est.ok
        assert est.avg_bps == pytest.approx(100e6, rel=0.1)
        assert est.min_bps <= est.avg_bps <= est.max_bps

    def test_sub_mtu_probes_underestimate(self):
        """Probe sizes below the MTU see the init-speed term (Eq 3.7)."""
        cluster, a, b = make_path(rate_mbps=100.0)

        def p():
            return (yield from estimate_bandwidth(a.stack, b.addr,
                                                  s1=100, s2=1000, samples=3))

        est = run_process(cluster.sim, p())
        assert est.ok
        assert est.avg_bps < 30e6  # ~1/(1/100M + hops/25M), not ~100M

    def test_detects_shaped_rate(self):
        """The rshaper cap must be visible to the probes (massd setup)."""
        cluster, a, b = make_path(rate_mbps=100.0, shaper_mbps=6.72)

        def p():
            return (yield from estimate_bandwidth(a.stack, b.addr, samples=3))

        est = run_process(cluster.sim, p())
        assert est.ok
        assert est.avg_bps == pytest.approx(6.72e6, rel=0.15)

    def test_bad_sizes_rejected(self):
        cluster, a, b = make_path()
        with pytest.raises(ValueError):
            list(estimate_bandwidth(a.stack, b.addr, s1=2000, s2=2000))

    def test_lossy_path_counts_losses(self):
        import random

        cluster, a, b = make_path()
        ch = a.node.nics[0].channel
        ch.loss_rate = 1.0
        ch.loss_rng = random.Random(0)

        def p():
            return (yield from estimate_bandwidth(a.stack, b.addr,
                                                  samples=2, timeout=0.1))

        est = run_process(cluster.sim, p())
        assert not est.ok
        assert est.lost == 2


class TestPipechar:
    def test_estimates_capacity(self):
        cluster, a, b = make_path(rate_mbps=100.0)

        def p():
            return (yield from pipechar_estimate(a.stack, b.addr, pairs=4))

        bps = run_process(cluster.sim, p())
        assert bps == pytest.approx(100e6, rel=0.2)


class TestNetworkMonitorDaemon:
    def test_publishes_peer_metrics(self):
        cluster = Cluster(seed=5)
        m1 = cluster.add_host("mon1")
        m2 = cluster.add_host("mon2")
        cluster.link(m1, m2, rate_bps=100 * MBPS)
        cluster.finalize()
        cfg = Config(netmon_interval=1.0, netmon_samples=2)
        nm = NetworkMonitor(cluster.sim, m1.stack, m1.shm, "g1", cfg)
        nm.add_peer("g2", m2.addr)
        nm.start()
        cluster.run(until=5.0)
        nm.stop()
        table = nm.table()
        assert "g2" in table.metrics
        metric = table.metrics["g2"]
        assert metric.bw_mbps == pytest.approx(100.0, rel=0.15)
        assert 0 < metric.delay_ms < 5.0
        assert nm.probes_done >= 2

    def test_own_group_peer_rejected(self):
        cluster = Cluster(seed=6)
        m1 = cluster.add_host("mon1")
        m2 = cluster.add_host("x")
        cluster.link(m1, m2)
        cluster.finalize()
        nm = NetworkMonitor(cluster.sim, m1.stack, m1.shm, "g1")
        with pytest.raises(ValueError):
            nm.add_peer("g1", m2.addr)
