"""Tests for the server probe: /proc parsers and the reporting daemon."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core import Config, ServerProbe, ServerStatusReport
from repro.core.probe import (
    parse_cpuinfo_bogomips,
    parse_loadavg,
    parse_meminfo,
    parse_net_dev,
    parse_stat_cpu,
    parse_stat_disk,
)
from repro.lang.variables import SERVER_SIDE_VARS


class TestParsers:
    def test_loadavg(self):
        assert parse_loadavg("0.52 0.41 0.30 2/80 12345\n") == (0.52, 0.41, 0.30)

    def test_loadavg_malformed(self):
        with pytest.raises(ValueError):
            parse_loadavg("0.52\n")

    def test_stat_cpu(self):
        text = "cpu  100 5 25 870\ncpu0 100 5 25 870\n"
        assert parse_stat_cpu(text) == (100, 5, 25, 870)

    def test_stat_cpu_missing(self):
        with pytest.raises(ValueError):
            parse_stat_cpu("intr 0\n")

    def test_stat_disk_24_format(self):
        text = "cpu  1 0 0 1\ndisk_io: (3,0):(100,60,480,40,320) (3,1):(10,5,40,5,40)\n"
        assert parse_stat_disk(text) == (110, 65, 520, 45, 360)

    def test_stat_disk_absent_reports_zeros(self):
        assert parse_stat_disk("cpu  1 0 0 1\n") == (0, 0, 0, 0, 0)

    def test_meminfo_24_byte_table(self):
        text = ("        total:    used:    free:  shared: buffers:  cached:\n"
                "Mem:  262213632 121085952 141127680 0 18284544 82911232\n")
        assert parse_meminfo(text) == (262213632, 121085952, 141127680)

    def test_meminfo_26_kb_fallback(self):
        text = "MemTotal:   256068 kB\nMemFree:    137820 kB\n"
        total, used, free = parse_meminfo(text)
        assert total == 256068 * 1024
        assert free == 137820 * 1024
        assert used == total - free

    def test_meminfo_thesis_table_4_1(self):
        """The exact before/after numbers of thesis Table 4.1 parse."""
        before = "Mem:  262213632 121085952 141127680 0 18284544 82911232\n"
        after = "Mem:  262213632 258310144 3903488 0 745472 231075840\n"
        t1, u1, f1 = parse_meminfo(before)
        t2, u2, f2 = parse_meminfo(after)
        assert t1 == t2 == 262213632
        assert u2 - u1 == 137224192  # SuperPI grabbed ~131 MB net

    def test_net_dev(self):
        text = (
            "Inter-|   Receive                                                |  Transmit\n"
            " face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n"
            "  eth0: 1000000    5000    0    0    0     0          0         0  2000000    6000    0    0    0     0       0          0\n"
            "    lo:  500       10      0    0    0     0          0         0   500       10     0    0    0     0       0          0\n"
        )
        devs = parse_net_dev(text)
        assert devs["eth0"] == (1000000, 5000, 2000000, 6000)
        assert devs["lo"] == (500, 10, 500, 10)

    def test_cpuinfo_bogomips(self):
        assert parse_cpuinfo_bogomips("bogomips\t: 4771.02\n") == 4771.02
        with pytest.raises(ValueError):
            parse_cpuinfo_bogomips("model name: x\n")


def make_probe_world(interval=1.0):
    cluster = Cluster(seed=1)
    server = cluster.add_host("server", bogomips=3394.76, mem_mb=192)
    monitor = cluster.add_host("monitor")
    cluster.link(server, monitor)
    cluster.finalize()
    cfg = Config(probe_interval=interval)
    probe = ServerProbe(
        cluster.sim, server.procfs, server.stack,
        monitor_addr=monitor.addr, group="lab", config=cfg,
    )
    inbox = monitor.stack.udp_socket(cfg.ports.system_monitor)
    return cluster, server, probe, inbox


class TestProbeDaemon:
    def test_reports_all_22_variables(self):
        cluster, _, probe, inbox = make_probe_world()
        probe.start()
        cluster.run(until=3.5)
        assert probe.reports_sent >= 3
        report = ServerStatusReport.from_wire(inbox.rx.items[-1].payload)
        assert set(report.values) == set(SERVER_SIDE_VARS)
        assert report.group == "lab"
        assert report.host == "server"

    def test_reported_bogomips_matches_machine(self):
        cluster, server, probe, inbox = make_probe_world()
        probe.start()
        cluster.run(until=1.5)
        report = ServerStatusReport.from_wire(inbox.rx.items[-1].payload)
        assert report.values["host_cpu_bogomips"] == pytest.approx(3394.76)

    def test_memory_free_unit_is_mb(self):
        cluster, server, probe, inbox = make_probe_world()
        probe.start()
        cluster.run(until=1.5)
        report = ServerStatusReport.from_wire(inbox.rx.items[-1].payload)
        free_mb = report.values["host_memory_free"]
        assert 10 < free_mb < 192  # plausible MB figure, not bytes

    def test_cpu_free_drops_under_load(self):
        from repro.host import SuperPiWorkload

        cluster, server, probe, inbox = make_probe_world()
        probe.start()
        SuperPiWorkload(cluster.sim, server.machine, digits_param=5).start()
        cluster.run(until=6.5)
        report = ServerStatusReport.from_wire(inbox.rx.items[-1].payload)
        assert report.values["host_cpu_free"] < 0.1

    def test_probe_occupies_documented_memory(self):
        cluster, server, probe, _ = make_probe_world()
        free_before = server.machine.memory.snapshot()["free"]
        probe.start()
        cluster.run(until=0.5)
        used = free_before - server.machine.memory.snapshot()["free"]
        assert used == ServerProbe.RESIDENT_BYTES

    def test_stop_ends_reporting_and_frees_memory(self):
        cluster, server, probe, inbox = make_probe_world()
        free_before = server.machine.memory.snapshot()["free"]
        probe.start()
        cluster.run(until=2.5)
        probe.stop()
        sent = probe.reports_sent
        cluster.run(until=6.0)
        assert probe.reports_sent == sent
        assert server.machine.memory.snapshot()["free"] == free_before

    def test_selected_params_reports_subset(self):
        cluster = Cluster(seed=2)
        server = cluster.add_host("server")
        monitor = cluster.add_host("monitor")
        cluster.link(server, monitor)
        cluster.finalize()
        cfg = Config(probe_interval=1.0)
        subset = {"host_cpu_free", "host_system_load1"}
        probe = ServerProbe(
            cluster.sim, server.procfs, server.stack,
            monitor_addr=monitor.addr, config=cfg, selected_params=subset,
        )
        inbox = monitor.stack.udp_socket(cfg.ports.system_monitor)
        probe.start()
        cluster.run(until=1.5)
        report = ServerStatusReport.from_wire(inbox.rx.items[-1].payload)
        assert set(report.values) == subset

    def test_double_start_rejected(self):
        cluster, _, probe, _ = make_probe_world()
        probe.start()
        with pytest.raises(RuntimeError):
            probe.start()

    def test_network_rates_reflect_traffic(self):
        cluster, server, probe, inbox = make_probe_world(interval=1.0)
        probe.start()
        # blast some UDP from the server so tbytesps rises
        sock = server.stack.udp_socket()

        def blaster():
            for _ in range(400):  # keeps transmitting past the last scan
                sock.sendto("monitor", 50000, size=1400)
                yield cluster.sim.timeout(0.01)

        cluster.sim.process(blaster())
        cluster.run(until=3.5)
        report = ServerStatusReport.from_wire(inbox.rx.items[-1].payload)
        assert report.values["host_network_tbytesps"] > 50000
