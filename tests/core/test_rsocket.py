"""Tests for the reliable-socket layer (thesis §6 fault-tolerance extension)."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.core.rsocket import ReliableServer, ReliableSocket
from tests.conftest import run_process


def make_world():
    cluster = Cluster(seed=31)
    client = cluster.add_host("client")
    server_host = cluster.add_host("server")
    cluster.link(client, server_host)
    cluster.finalize()
    server = ReliableServer(server_host.stack, 7000)
    server.start()
    return cluster, client, server_host, server


class TestBasicSession:
    def test_send_recv_roundtrip(self):
        cluster, client, _, server = make_world()
        out = {}

        def srv():
            session = yield server.accept()
            msg, n = yield session.recv()
            out["server_got"] = (msg, n)
            session.send(msg.upper(), 256)

        def cli():
            rsock = ReliableSocket(client.stack, "server", 7000)
            yield from rsock.connect()
            rsock.send("ping", 128)
            msg, n = yield rsock.recv()
            out["client_got"] = (msg, n)

        cluster.sim.process(srv())
        cluster.sim.process(cli())
        cluster.run(until=30.0)
        assert out["server_got"] == ("ping", 128)
        assert out["client_got"] == ("PING", 256)

    def test_messages_in_order(self):
        cluster, client, _, server = make_world()
        got = []

        def srv():
            session = yield server.accept()
            for _ in range(5):
                msg, _ = yield session.recv()
                got.append(msg)

        def cli():
            rsock = ReliableSocket(client.stack, "server", 7000)
            yield from rsock.connect()
            for i in range(5):
                rsock.send(i, 64)

        cluster.sim.process(srv())
        cluster.sim.process(cli())
        cluster.run(until=30.0)
        assert got == [0, 1, 2, 3, 4]

    def test_invalid_size_rejected(self):
        cluster, client, _, server = make_world()

        def cli():
            rsock = ReliableSocket(client.stack, "server", 7000)
            yield from rsock.connect()
            with pytest.raises(ValueError):
                rsock.send("x", 0)

        run_process(cluster.sim, cli(), until=30.0)


class TestSuspendResume:
    def test_stream_continues_across_suspend(self):
        cluster, client, _, server = make_world()
        got = []

        def srv():
            session = yield server.accept()
            while len(got) < 6:
                msg, _ = yield session.recv()
                got.append(msg)

        def cli():
            rsock = ReliableSocket(client.stack, "server", 7000)
            yield from rsock.connect()
            for i in range(3):
                rsock.send(i, 64)
            yield cluster.sim.timeout(1.0)
            rsock.suspend()
            # sends while suspended are buffered
            rsock.send(3, 64)
            rsock.send(4, 64)
            yield cluster.sim.timeout(2.0)
            yield from rsock.resume()
            rsock.send(5, 64)
            return rsock

        cluster.sim.process(srv())
        proc = cluster.sim.process(cli())
        cluster.run(until=60.0)
        assert got == [0, 1, 2, 3, 4, 5]
        assert proc.value.reconnects == 1

    def test_no_duplicates_when_acks_lost_with_connection(self):
        """Messages acked at the TCP level but whose session RACK raced the
        suspend must not be delivered twice after resume."""
        cluster, client, _, server = make_world()
        got = []

        def srv():
            session = yield server.accept()
            while len(got) < 4:
                msg, _ = yield session.recv()
                got.append(msg)

        def cli():
            rsock = ReliableSocket(client.stack, "server", 7000)
            yield from rsock.connect()
            rsock.send("a", 64)
            rsock.send("b", 64)
            # suspend immediately: RACKs may not have come back yet
            rsock.suspend()
            yield from rsock.resume()
            rsock.send("c", 64)
            rsock.send("d", 64)

        cluster.sim.process(srv())
        cluster.sim.process(cli())
        cluster.run(until=60.0)
        assert got == ["a", "b", "c", "d"]

    def test_server_replies_survive_reconnect(self):
        cluster, client, _, server = make_world()
        out = {}

        def srv():
            session = yield server.accept()
            msg, _ = yield session.recv()
            # client is suspended right now; this buffers
            session.send("answer", 64)

        def cli():
            rsock = ReliableSocket(client.stack, "server", 7000)
            yield from rsock.connect()
            rsock.send("question", 64)
            yield cluster.sim.timeout(0.5)
            rsock.suspend()
            yield cluster.sim.timeout(2.0)
            yield from rsock.resume()
            msg, _ = yield rsock.recv()
            out["reply"] = msg

        cluster.sim.process(srv())
        cluster.sim.process(cli())
        cluster.run(until=60.0)
        assert out["reply"] == "answer"

    def test_sessions_are_independent(self):
        cluster, client, _, server = make_world()
        got = {}

        def srv():
            while True:
                session = yield server.accept()
                cluster.sim.process(serve_one(session))

        def serve_one(session):
            msg, _ = yield session.recv()
            got[session.session_id] = msg

        def cli(tag):
            rsock = ReliableSocket(client.stack, "server", 7000)
            yield from rsock.connect()
            rsock.send(tag, 64)
            return rsock

        cluster.sim.process(srv())
        p1 = cluster.sim.process(cli("one"))
        p2 = cluster.sim.process(cli("two"))
        cluster.run(until=30.0)
        assert sorted(got.values()) == ["one", "two"]
        assert p1.value.session_id != p2.value.session_id
        assert len(server.sessions) == 2
