"""The thesis' introductory example (Fig 1.4), end to end.

Twelve servers in four networks A–D with one-way delays of ~100, 5, 10 and
15 ms from the client.  The user asks for 3 servers with 100 MB free
memory, CPU usage below 10 %, network delay below 20 ms, and blacklists
``hacker.some.net``.  Expected outcome (per the figure): network A is
eliminated by delay, the blacklisted host is skipped, and the candidates
come from B, C and D.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import _drive
from repro.cluster import Cluster, Deployment
from repro.core import Config

REQUIREMENT = """
host_memory_free > 100
host_cpu_free > 0.9
monitor_network_delay < 20
user_denied_host1 = hacker.some.net
"""

#: one-way delay from the client to each network (ms), per Fig 1.4
NETWORK_DELAYS = {"A": 100.0, "B": 5.0, "C": 10.0, "D": 15.0}


@pytest.fixture(scope="module")
def world():
    cluster = Cluster(seed=0xF14)
    client = cluster.add_host("client")
    wizard_host = cluster.add_host("wizard")
    core = cluster.add_switch("core")
    cluster.link(client, core, delay=0.1e-3)
    cluster.link(wizard_host, core, delay=0.1e-3)

    monitors = {}
    servers = {}
    for net, delay_ms in NETWORK_DELAYS.items():
        gw = cluster.add_switch(f"gw-{net}")
        cluster.link(core, gw, delay=delay_ms * 1e-3)
        mon = cluster.add_host(f"mon-{net}", mem_mb=512)
        cluster.link(mon, gw, delay=0.05e-3)
        monitors[net] = mon
        group = []
        for i in (1, 2, 3):
            name = f"hacker.some.net" if (net, i) == ("C", 2) else f"{net.lower()}{i}"
            host = cluster.add_host(name, mem_mb=512, bogomips=3000)
            cluster.link(host, gw, delay=0.05e-3)
            group.append(host)
        servers[net] = group
    cluster.finalize()

    cfg = Config(probe_interval=1.0, transmit_interval=1.0, netmon_interval=1.0)
    dep = Deployment(cluster, wizard_host=wizard_host, config=cfg)
    # the client's own (monitor-only) group sits on the core network
    dep.add_group("client-net", monitor_host=client, servers=[])
    for net in NETWORK_DELAYS:
        dep.add_group(f"net-{net}", monitor_host=monitors[net],
                      servers=servers[net])
    dep.start()
    client_api = dep.client_for(client)
    out = {}

    def driver():
        yield cluster.sim.timeout(dep.warm_up_seconds() + 10.0)
        reply = yield from client_api.request_servers(REQUIREMENT, 3)
        out["names"] = sorted(cluster.network.hostname_of(a)
                              for a in reply.servers)
        # also fetch everything that qualifies, for the exclusion checks
        reply_all = yield from client_api.request_servers(REQUIREMENT, 60)
        out["all"] = sorted(cluster.network.hostname_of(a)
                            for a in reply_all.servers)

    proc = cluster.sim.process(driver())
    _drive(cluster, proc)
    return out


class TestFig14:
    def test_three_servers_returned(self, world):
        assert len(world["names"]) == 3

    def test_network_a_eliminated_by_delay(self, world):
        assert not any(n.startswith("a") for n in world["all"])

    def test_blacklisted_host_skipped(self, world):
        assert "hacker.some.net" not in world["all"]

    def test_candidates_come_from_b_c_d(self, world):
        assert all(n[0] in "bcd" for n in world["all"])

    def test_all_qualified_count(self, world):
        # 9 servers in B/C/D, minus the blacklisted one
        assert len(world["all"]) == 8
