"""Tests for the simplified TCP: handshake, framing, windows, loss recovery."""

from __future__ import annotations

import pytest

from repro.net import (
    ConnectError,
    ConnectionClosed,
    MBPS,
    Network,
    NetworkStack,
    TokenBucket,
)
from tests.conftest import run_process


def make_pair(sim, rate_bps=100 * MBPS, delay=100e-6, **kw):
    net = Network(sim)
    a, b = net.add_host("a"), net.add_host("b")
    link = net.connect(a, b, rate_bps=rate_bps, delay=delay, **kw)
    net.build_routes()
    return net, NetworkStack(sim, a, net), NetworkStack(sim, b, net), link


class TestHandshake:
    def test_connect_accept(self, sim):
        _, sa, sb, _ = make_pair(sim)
        lsn = sb.tcp.listen(80)
        out = {}

        def server():
            conn = yield lsn.accept()
            out["server_peer"] = conn.remote_addr

        def client():
            conn = yield from sa.tcp.connect("b", 80)
            out["established"] = conn.established

        sim.process(server())
        sim.process(client())
        sim.run()
        assert out["established"]
        assert out["server_peer"] == sa.node.addr

    def test_connect_to_closed_port_times_out(self, sim):
        _, sa, sb, _ = make_pair(sim)

        def client():
            try:
                yield from sa.tcp.connect("b", 81, timeout=0.5)
            except ConnectError:
                return "refused"

        assert run_process(sim, client()) == "refused"

    def test_duplicate_listen_rejected(self, sim):
        _, _, sb, _ = make_pair(sim)
        sb.tcp.listen(80)
        with pytest.raises(RuntimeError):
            sb.tcp.listen(80)

    def test_handshake_survives_syn_loss(self, sim):
        import random

        _, sa, sb, link = make_pair(sim)
        # drop the first frame ever transmitted a->b (the SYN)
        link.ab.loss_rate = 1.0
        link.ab.loss_rng = random.Random(0)

        def heal():
            yield sim.timeout(0.5)
            link.ab.loss_rate = 0.0

        lsn = sb.tcp.listen(80)

        def client():
            conn = yield from sa.tcp.connect("b", 80, timeout=4.0)
            return conn.established

        sim.process(heal())
        assert run_process(sim, client()) is True


class TestMessaging:
    def test_messages_arrive_whole_and_in_order(self, sim):
        _, sa, sb, _ = make_pair(sim)
        lsn = sb.tcp.listen(80)
        got = []

        def server():
            conn = yield lsn.accept()
            for _ in range(3):
                msg, n = yield conn.recv()
                got.append((msg, n))

        def client():
            conn = yield from sa.tcp.connect("b", 80)
            conn.send("one", 5000)
            conn.send("two", 100)
            conn.send("three", 50000)

        sim.process(server())
        sim.process(client())
        sim.run()
        assert got == [("one", 5000), ("two", 100), ("three", 50000)]

    def test_bidirectional_transfer(self, sim):
        _, sa, sb, _ = make_pair(sim)
        lsn = sb.tcp.listen(80)
        out = {}

        def server():
            conn = yield lsn.accept()
            msg, _ = yield conn.recv()
            conn.send(msg.upper(), 300)

        def client():
            conn = yield from sa.tcp.connect("b", 80)
            conn.send("ping", 200)
            msg, n = yield conn.recv()
            out["reply"] = (msg, n)

        sim.process(server())
        sim.process(client())
        sim.run()
        assert out["reply"] == ("PING", 300)

    def test_close_delivers_eof(self, sim):
        _, sa, sb, _ = make_pair(sim)
        lsn = sb.tcp.listen(80)
        out = {}

        def server():
            conn = yield lsn.accept()
            msg, _ = yield conn.recv()
            try:
                yield conn.recv()
            except ConnectionClosed:
                out["eof"] = True
                out["flag"] = conn.peer_closed

        def client():
            conn = yield from sa.tcp.connect("b", 80)
            conn.send("bye", 10)
            conn.close()

        sim.process(server())
        sim.process(client())
        sim.run()
        assert out == {"eof": True, "flag": True}

    def test_send_after_close_rejected(self, sim):
        _, sa, sb, _ = make_pair(sim)
        sb.tcp.listen(80)

        def client():
            conn = yield from sa.tcp.connect("b", 80)
            conn.close()
            with pytest.raises(ConnectionClosed):
                conn.send("x", 1)

        run_process(sim, client())

    def test_invalid_message_size_rejected(self, sim):
        _, sa, sb, _ = make_pair(sim)
        sb.tcp.listen(80)

        def client():
            conn = yield from sa.tcp.connect("b", 80)
            with pytest.raises(ValueError):
                conn.send("x", 0)

        run_process(sim, client())


class TestThroughput:
    def _transfer(self, sim, nbytes, rate_bps, shaper_bps=None, loss=0.0, mss=1460):
        import random

        _, sa, sb, link = make_pair(sim, rate_bps=rate_bps)
        if shaper_bps:
            link.ba.shaper = TokenBucket(rate_bps=shaper_bps, burst_bytes=1600)
        if loss:
            link.ba.loss_rate = loss
            link.ba.loss_rng = random.Random(3)
        lsn = sb.tcp.listen(80, mss=mss)
        out = {}

        def server():
            conn = yield lsn.accept()
            msg, _ = yield conn.recv()
            conn.send("data", nbytes)

        def client():
            conn = yield from sa.tcp.connect("b", 80, mss=mss)
            conn.send("get", 10)
            t0 = sim.now
            _, n = yield conn.recv()
            out["bps"] = n * 8 / (sim.now - t0)

        sim.process(server())
        sim.process(client())
        sim.run()
        return out["bps"]

    def test_throughput_near_link_rate(self, sim):
        bps = self._transfer(sim, 2_000_000, rate_bps=100e6)
        assert bps == pytest.approx(100e6, rel=0.15)

    def test_shaper_caps_throughput(self, sim):
        bps = self._transfer(sim, 1_000_000, rate_bps=100e6, shaper_bps=5e6)
        assert bps == pytest.approx(5e6, rel=0.1)

    def test_data_survives_random_loss(self, sim):
        bps = self._transfer(sim, 200_000, rate_bps=100e6, loss=0.02)
        assert bps > 0  # completed despite ~2% frame loss

    def test_two_flows_share_bottleneck(self, sim):
        net = Network(sim)
        a, b, c = net.add_host("a"), net.add_host("b"), net.add_host("c")
        r = net.add_router("r")
        net.connect(a, r, rate_bps=10e6)
        net.connect(b, r, rate_bps=100e6)
        net.connect(c, r, rate_bps=100e6)
        net.build_routes()
        sa = NetworkStack(sim, a, net)
        sb = NetworkStack(sim, b, net)
        sc = NetworkStack(sim, c, net)
        done = {}

        def receiver(stack, port, tag):
            lsn = stack.tcp.listen(port)
            conn = yield lsn.accept()
            _, n = yield conn.recv()
            done[tag] = sim.now

        def sender(dst, port):
            conn = yield from sa.tcp.connect(dst, port, mss=1460)
            conn.send("blob", 1_000_000)

        sim.process(receiver(sb, 80, "b"))
        sim.process(receiver(sc, 80, "c"))
        sim.process(sender("b", 80))
        sim.process(sender("c", 80))
        sim.run()
        # 2 MB total through a 10 Mb/s uplink: ~1.6s; both finish near then
        assert max(done.values()) == pytest.approx(1.65, rel=0.15)
        assert abs(done["b"] - done["c"]) < 0.5
