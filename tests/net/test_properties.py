"""Property-based tests (hypothesis) for network-layer invariants."""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.net import Datagram, IP_HEADER, PROTO_TCP, PROTO_UDP, TokenBucket, fragment_sizes
from repro.net.packet import Frame

sizes = st.integers(min_value=1, max_value=100_000)
mtus = st.integers(min_value=100, max_value=9000)


class TestFragmentationProperties:
    @given(sizes, mtus)
    def test_payload_conservation(self, transport, mtu):
        frag = fragment_sizes(transport, mtu)
        assert sum(s - IP_HEADER for s in frag) == transport

    @given(sizes, mtus)
    def test_every_fragment_fits_mtu(self, transport, mtu):
        assert all(s <= mtu for s in fragment_sizes(transport, mtu))

    @given(sizes, mtus)
    def test_all_but_last_fragment_full(self, transport, mtu):
        frag = fragment_sizes(transport, mtu)
        assert all(s == mtu for s in frag[:-1])

    @given(sizes, mtus, mtus)
    def test_smaller_mtu_never_fewer_fragments(self, transport, mtu_a, mtu_b):
        lo, hi = sorted((mtu_a, mtu_b))
        assert len(fragment_sizes(transport, lo)) >= len(fragment_sizes(transport, hi))

    @given(sizes, mtus)
    def test_wire_overhead_is_exactly_headers(self, transport, mtu):
        frag = fragment_sizes(transport, mtu)
        assert sum(frag) == transport + IP_HEADER * len(frag)


class TestFrameSplitProperties:
    @given(st.integers(min_value=1, max_value=60_000), mtus, mtus)
    def test_split_then_split_equals_split_at_min(self, payload, mtu_a, mtu_b):
        """Re-fragmenting at a second router conserves bytes and respects
        the smaller MTU."""
        d = Datagram(proto=PROTO_UDP, src="a", dst="b", sport=1, dport=2,
                     size=payload)
        first = Frame(d, d.transport_bytes, first=True)
        once = first.split(mtu_a)
        twice = [p for f in once for p in f.split(mtu_b)]
        assert sum(p.payload_bytes for p in twice) == d.transport_bytes
        assert all(p.payload_bytes + IP_HEADER <= min(mtu_a, mtu_b) or
                   p.payload_bytes + IP_HEADER <= mtu_b for p in twice)
        assert sum(1 for p in twice if p.first) == 1

    @given(st.integers(min_value=1, max_value=60_000), mtus)
    def test_burst_wire_matches_datagram_wire(self, payload, mtu):
        d = Datagram(proto=PROTO_TCP, src="a", dst="b", sport=1, dport=2,
                     size=payload)
        f = Frame(d, d.transport_bytes, first=True, burst=True)
        assert f.wire_at(mtu) == d.wire_size(mtu)


class TestTokenBucketProperties:
    @given(st.lists(st.integers(min_value=100, max_value=9000),
                    min_size=2, max_size=60),
           st.floats(min_value=1e5, max_value=1e8))
    @settings(max_examples=60)
    def test_long_run_rate_never_exceeds_configured(self, packets, rate_bps):
        tb = TokenBucket(rate_bps=rate_bps, burst_bytes=2000)
        t = 0.0
        total = 0
        for nbytes in packets:
            t = tb.reserve(nbytes, t)
            total += nbytes
        assume(t > 0)
        # the bucket may lend its burst once; amortised rate obeys the cap
        assert total <= rate_bps / 8 * t + 2000 + max(packets)

    @given(st.lists(st.integers(min_value=100, max_value=3000),
                    min_size=2, max_size=40))
    def test_start_times_monotone(self, packets):
        tb = TokenBucket(rate_bps=1e6, burst_bytes=1500)
        t = 0.0
        starts = []
        for nbytes in packets:
            t = tb.reserve(nbytes, t)
            starts.append(t)
        assert starts == sorted(starts)

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=100.0))
    def test_tokens_capped_and_nonnegative_after_settle(self, t1, t2):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=4000)
        tb.reserve(4000, 0.0)
        level = tb.tokens_at(max(t1, t2))
        assert 0.0 <= level <= 4000


class TestChannelProperties:
    @given(st.lists(st.integers(min_value=28, max_value=1472),
                    min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_fifo_delivery_order_and_work_conservation(self, payloads):
        from repro.net.link import Channel
        from repro.sim import Simulator

        sim = Simulator()
        ch = Channel(sim, rate_bps=8e6, delay=1e-3)
        delivered = []
        ch.on_deliver = lambda f: delivered.append((f, sim.now))
        frames = []
        for p in payloads:
            d = Datagram(proto=PROTO_UDP, src="a", dst="b", sport=1,
                         dport=2, size=p)
            f = Frame(d, d.transport_bytes, first=True)
            frames.append(f)
            ch.transmit(f)
        sim.run()
        # FIFO: delivery order equals submission order
        assert [f for f, _ in delivered] == frames
        # work conservation: last delivery = sum of serialisations + delay
        total_wire = sum(f.wire_at(ch.mtu) for f in frames)
        expected = total_wire * 8 / 8e6 + 1e-3
        assert abs(delivered[-1][1] - expected) < 1e-9
