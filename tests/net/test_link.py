"""Unit tests for channels and links: serialisation, queueing, loss."""

from __future__ import annotations

import random

import pytest

from repro.net import Datagram, PROTO_UDP
from repro.net.link import Channel
from repro.net.packet import Frame


def frame_of(size=1000, proto=PROTO_UDP):
    d = Datagram(proto=proto, src="a", dst="b", sport=1, dport=2, size=size)
    return Frame(d, d.transport_bytes, first=True)


@pytest.fixture
def channel(sim):
    ch = Channel(sim, rate_bps=8e6, delay=1e-3)  # 1 MB/s, 1 ms
    ch.delivered = []
    ch.on_deliver = ch.delivered.append
    return ch


class TestSerialisation:
    def test_delivery_time_is_tx_plus_prop(self, sim, channel):
        f = frame_of(972)  # transport 980, wire 1000
        channel.transmit(f)
        sim.run()
        assert sim.now == pytest.approx(1000 / 1e6 + 1e-3)
        assert channel.delivered == [f]

    def test_fifo_queueing_serialises(self, sim, channel):
        times = []
        channel.on_deliver = lambda fr: times.append(sim.now)
        for _ in range(3):
            channel.transmit(frame_of(972))
        sim.run()
        tx = 1000 / 1e6
        assert times == pytest.approx([tx + 1e-3, 2 * tx + 1e-3, 3 * tx + 1e-3])

    def test_backlog_tracks_queue(self, sim, channel):
        for _ in range(4):
            channel.transmit(frame_of(972))
        assert channel.backlog_bytes() == pytest.approx(4000)
        sim.run()
        assert channel.backlog_bytes() == 0.0

    def test_extra_start_delay_defers_start(self, sim, channel):
        channel.transmit(frame_of(972), extra_start_delay=0.5)
        sim.run()
        assert sim.now == pytest.approx(0.5 + 1000 / 1e6 + 1e-3)

    def test_occupy_pushes_later_traffic(self, sim, channel):
        channel.occupy(10000)  # 10 ms of cross traffic
        channel.transmit(frame_of(972))
        sim.run()
        assert sim.now == pytest.approx(0.010 + 0.001 + 0.001)

    def test_busy_time_accumulates(self, sim, channel):
        channel.transmit(frame_of(972))
        sim.run()
        assert channel.busy_time == pytest.approx(1e-3)
        assert channel.utilisation(sim.now) > 0


class TestDropPolicies:
    def test_tail_drop_when_buffer_exceeded(self, sim):
        ch = Channel(sim, rate_bps=8e3, delay=0, buffer_bytes=2000)  # slow
        ch.on_deliver = lambda f: None
        results = [ch.transmit(frame_of(972)) for _ in range(5)]
        assert results[0] and not all(results)
        assert ch.drops >= 1

    def test_random_loss(self, sim):
        ch = Channel(sim, rate_bps=8e9, delay=0)
        ch.on_deliver = lambda f: None
        ch.loss_rate = 0.5
        ch.loss_rng = random.Random(7)
        sent = [ch.transmit(frame_of(972)) for _ in range(200)]
        lost = sent.count(False)
        assert 50 < lost < 150
        assert ch.drops == lost

    def test_invalid_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, rate_bps=0, delay=0)
        with pytest.raises(ValueError):
            Channel(sim, rate_bps=1, delay=-1)

    def test_no_receiver_raises(self, sim):
        ch = Channel(sim, rate_bps=8e6, delay=0)
        ch.transmit(frame_of())
        with pytest.raises(RuntimeError, match="no receiver"):
            sim.run()


class TestShapedChannel:
    def test_shaper_limits_throughput(self, sim):
        from repro.net import TokenBucket

        ch = Channel(sim, rate_bps=100e6, delay=0)
        times = []
        ch.on_deliver = lambda fr: times.append(sim.now)
        ch.shaper = TokenBucket(rate_bps=8e6, burst_bytes=1000)  # 1 MB/s
        for _ in range(20):
            ch.transmit(frame_of(972))  # 1000 B wire each
        sim.run()
        # 20 KB at 1 MB/s -> ~19 ms for the last (first rides the burst)
        assert times[-1] == pytest.approx(0.019, rel=0.1)
