"""Unit tests for channels and links: serialisation, queueing, loss."""

from __future__ import annotations

import random

import pytest

from repro.net import Datagram, PROTO_UDP
from repro.net.link import Channel
from repro.net.packet import Frame


def frame_of(size=1000, proto=PROTO_UDP):
    d = Datagram(proto=proto, src="a", dst="b", sport=1, dport=2, size=size)
    return Frame(d, d.transport_bytes, first=True)


@pytest.fixture
def channel(sim):
    ch = Channel(sim, rate_bps=8e6, delay=1e-3)  # 1 MB/s, 1 ms
    ch.delivered = []
    ch.on_deliver = ch.delivered.append
    return ch


class TestSerialisation:
    def test_delivery_time_is_tx_plus_prop(self, sim, channel):
        f = frame_of(972)  # transport 980, wire 1000
        channel.transmit(f)
        sim.run()
        assert sim.now == pytest.approx(1000 / 1e6 + 1e-3)
        assert channel.delivered == [f]

    def test_fifo_queueing_serialises(self, sim, channel):
        times = []
        channel.on_deliver = lambda fr: times.append(sim.now)
        for _ in range(3):
            channel.transmit(frame_of(972))
        sim.run()
        tx = 1000 / 1e6
        assert times == pytest.approx([tx + 1e-3, 2 * tx + 1e-3, 3 * tx + 1e-3])

    def test_backlog_tracks_queue(self, sim, channel):
        for _ in range(4):
            channel.transmit(frame_of(972))
        assert channel.backlog_bytes() == pytest.approx(4000)
        sim.run()
        assert channel.backlog_bytes() == 0.0

    def test_extra_start_delay_defers_start(self, sim, channel):
        channel.transmit(frame_of(972), extra_start_delay=0.5)
        sim.run()
        assert sim.now == pytest.approx(0.5 + 1000 / 1e6 + 1e-3)

    def test_occupy_pushes_later_traffic(self, sim, channel):
        channel.occupy(10000)  # 10 ms of cross traffic
        channel.transmit(frame_of(972))
        sim.run()
        assert sim.now == pytest.approx(0.010 + 0.001 + 0.001)

    def test_busy_time_accumulates(self, sim, channel):
        channel.transmit(frame_of(972))
        sim.run()
        assert channel.busy_time == pytest.approx(1e-3)
        assert channel.utilisation(sim.now) > 0


class TestDropPolicies:
    def test_tail_drop_when_buffer_exceeded(self, sim):
        ch = Channel(sim, rate_bps=8e3, delay=0, buffer_bytes=2000)  # slow
        ch.on_deliver = lambda f: None
        results = [ch.transmit(frame_of(972)) for _ in range(5)]
        assert results[0] and not all(results)
        assert ch.drops >= 1

    def test_random_loss(self, sim):
        ch = Channel(sim, rate_bps=8e9, delay=0)
        ch.on_deliver = lambda f: None
        ch.loss_rate = 0.5
        ch.loss_rng = random.Random(7)
        sent = [ch.transmit(frame_of(972)) for _ in range(200)]
        lost = sent.count(False)
        assert 50 < lost < 150
        assert ch.drops == lost

    def test_invalid_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, rate_bps=0, delay=0)
        with pytest.raises(ValueError):
            Channel(sim, rate_bps=1, delay=-1)

    def test_no_receiver_raises(self, sim):
        ch = Channel(sim, rate_bps=8e6, delay=0)
        ch.transmit(frame_of())
        with pytest.raises(RuntimeError, match="no receiver"):
            sim.run()


class ScriptedRandom:
    """Pops pre-scripted draws — exact control over jitter/reorder."""

    def __init__(self, uniforms=(), randoms=()):
        self.uniforms = list(uniforms)
        self.randoms = list(randoms)

    def uniform(self, a, b):
        return self.uniforms.pop(0)

    def random(self):
        return self.randoms.pop(0)


class TestDirectionalDegradation:
    """Gray-failure knobs are *per channel*: a link can be sick one way
    (latency, jitter, reorder, loss) and healthy the other — the
    asymmetric partitions of the degrade-link fault."""

    def make_pair(self, sim):
        """Two channels modelling one duplex link: fwd (to degrade) and
        rev (to stay healthy)."""
        fwd = Channel(sim, rate_bps=8e6, delay=1e-3)
        rev = Channel(sim, rate_bps=8e6, delay=1e-3)
        fwd.log, rev.log = [], []
        fwd.on_deliver = lambda fr: fwd.log.append((sim.now, fr))
        rev.on_deliver = lambda fr: rev.log.append((sim.now, fr))
        return fwd, rev

    def test_extra_delay_hits_only_the_degraded_direction(self, sim):
        fwd, rev = self.make_pair(sim)
        fwd.extra_delay = 0.5
        fwd.transmit(frame_of(972))
        rev.transmit(frame_of(972))
        sim.run()
        base = 1000 / 1e6 + 1e-3
        assert rev.log[0][0] == pytest.approx(base)
        assert fwd.log[0][0] == pytest.approx(base + 0.5)

    def test_jitter_draws_bounded_delay_noise(self, sim):
        fwd, rev = self.make_pair(sim)
        fwd.jitter = 0.2
        fwd.degrade_rng = ScriptedRandom(uniforms=[0.15])
        fwd.transmit(frame_of(972))
        rev.transmit(frame_of(972))
        sim.run()
        base = 1000 / 1e6 + 1e-3
        assert fwd.log[0][0] == pytest.approx(base + 0.15)
        assert rev.log[0][0] == pytest.approx(base)

    def test_reorder_makes_a_successor_overtake(self, sim):
        fwd, _ = self.make_pair(sim)
        fwd.reorder_rate = 0.5
        fwd.reorder_extra = 0.05
        # first frame drawn below the rate (reordered late), second above
        fwd.degrade_rng = ScriptedRandom(randoms=[0.1, 0.9])
        first, second = frame_of(972), frame_of(972)
        fwd.transmit(first)
        fwd.transmit(second)
        sim.run()
        delivered = [fr for _, fr in fwd.log]
        assert delivered == [second, first]

    def test_loss_applies_per_direction(self, sim):
        fwd, rev = self.make_pair(sim)
        fwd.loss_rate = 1.0
        fwd.loss_rng = random.Random(3)
        dropped = [fwd.transmit(frame_of(972)) for _ in range(5)]
        passed = [rev.transmit(frame_of(972)) for _ in range(5)]
        sim.run()
        assert not any(dropped) and all(passed)
        assert fwd.log == [] and len(rev.log) == 5

    def test_healthy_channel_pays_no_degradation_cost(self, sim):
        """No degrade_rng, no extra fields: the hot path is untouched
        (delivery time identical to the pre-gray formula)."""
        ch = Channel(sim, rate_bps=8e6, delay=1e-3)
        times = []
        ch.on_deliver = lambda fr: times.append(sim.now)
        ch.transmit(frame_of(972))
        sim.run()
        assert times == [pytest.approx(1000 / 1e6 + 1e-3)]


class TestShapedChannel:
    def test_shaper_limits_throughput(self, sim):
        from repro.net import TokenBucket

        ch = Channel(sim, rate_bps=100e6, delay=0)
        times = []
        ch.on_deliver = lambda fr: times.append(sim.now)
        ch.shaper = TokenBucket(rate_bps=8e6, burst_bytes=1000)  # 1 MB/s
        for _ in range(20):
            ch.transmit(frame_of(972))  # 1000 B wire each
        sim.run()
        # 20 KB at 1 MB/s -> ~19 ms for the last (first rides the burst)
        assert times[-1] == pytest.approx(0.019, rel=0.1)
