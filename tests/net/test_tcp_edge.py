"""TCP edge cases: heavy loss, RTO backoff, bidirectional bulk, many flows."""

from __future__ import annotations

import random

import pytest

from repro.net import MBPS, Network, NetworkStack


def make_pair(sim, rate_bps=100 * MBPS, delay=100e-6):
    net = Network(sim)
    a, b = net.add_host("a"), net.add_host("b")
    link = net.connect(a, b, rate_bps=rate_bps, delay=delay)
    net.build_routes()
    return net, NetworkStack(sim, a, net), NetworkStack(sim, b, net), link


class TestLossRecovery:
    @pytest.mark.parametrize("loss", [0.05, 0.15])
    def test_transfer_completes_under_heavy_loss(self, sim, loss):
        _, sa, sb, link = make_pair(sim)
        for ch in (link.ab, link.ba):
            ch.loss_rate = loss
            ch.loss_rng = random.Random(int(loss * 100))
        lsn = sb.tcp.listen(80)
        out = {}

        def server():
            conn = yield lsn.accept()
            total = 0
            while total < 3:
                msg, n = yield conn.recv()
                total += 1
                out.setdefault("msgs", []).append((msg, n))

        def client():
            conn = yield from sa.tcp.connect("b", 80, timeout=30.0)
            conn.send("one", 20_000)
            conn.send("two", 5_000)
            conn.send("three", 50_000)
            out["retx"] = lambda: conn.retransmit_count

        sim.process(server())
        sim.process(client())
        sim.run(until=300.0)
        assert out["msgs"] == [("one", 20_000), ("two", 5_000),
                               ("three", 50_000)]
        assert out["retx"]() > 0  # recovery actually exercised

    def test_rto_backs_off_on_repeat_timeouts(self, sim):
        _, sa, sb, link = make_pair(sim)
        lsn = sb.tcp.listen(80)
        out = {}

        def server():
            conn = yield lsn.accept()
            yield conn.recv()

        def client():
            conn = yield from sa.tcp.connect("b", 80)
            base_rto = conn.rto
            # now break the forward path completely
            link.ab.loss_rate = 1.0
            link.ab.loss_rng = random.Random(0)
            conn.send("doomed", 1000)
            yield sim.timeout(10.0)
            out["rto_grew"] = conn.rto > 2 * base_rto
            out["retx"] = conn.retransmit_count
            # heal: the next retransmission must deliver
            link.ab.loss_rate = 0.0

        sim.process(server())
        sim.process(client())
        sim.run(until=120.0)
        assert out["rto_grew"]
        assert out["retx"] >= 2


class TestBidirectionalAndConcurrent:
    def test_simultaneous_bulk_in_both_directions(self, sim):
        _, sa, sb, _ = make_pair(sim, rate_bps=10 * MBPS)
        lsn = sb.tcp.listen(80, mss=4096)
        done = {}

        def server():
            conn = yield lsn.accept()
            conn.send("south", 1_000_000)
            msg, n = yield conn.recv()
            done["server"] = (msg, n, sim.now)

        def client():
            conn = yield from sa.tcp.connect("b", 80, mss=4096)
            conn.send("north", 1_000_000)
            msg, n = yield conn.recv()
            done["client"] = (msg, n, sim.now)

        sim.process(server())
        sim.process(client())
        sim.run()
        assert done["server"][:2] == ("north", 1_000_000)
        assert done["client"][:2] == ("south", 1_000_000)
        # full duplex: both directions ~0.8s, not 1.6s serialised
        assert max(done["server"][2], done["client"][2]) < 1.3

    def test_many_connections_between_same_hosts(self, sim):
        _, sa, sb, _ = make_pair(sim)
        lsn = sb.tcp.listen(80)
        got = []

        def server():
            while True:
                conn = yield lsn.accept()
                sim.process(echo(conn))

        def echo(conn):
            msg, n = yield conn.recv()
            got.append(msg)

        def client(i):
            conn = yield from sa.tcp.connect("b", 80)
            conn.send(f"flow-{i}", 1000)

        sim.process(server())
        for i in range(10):
            sim.process(client(i))
        sim.run(until=30.0)
        assert sorted(got) == sorted(f"flow-{i}" for i in range(10))

    def test_connection_keys_do_not_collide(self, sim):
        """Two clients on one host to the same server port must have
        distinct local ports and both work."""
        _, sa, sb, _ = make_pair(sim)
        lsn = sb.tcp.listen(80)
        seen_ports = set()

        def server():
            while True:
                conn = yield lsn.accept()
                seen_ports.add(conn.remote_port)

        def client():
            conn = yield from sa.tcp.connect("b", 80)
            return conn.local_port

        sim.process(server())
        p1 = sim.process(client())
        p2 = sim.process(client())
        sim.run(until=10.0)
        assert p1.value != p2.value
        assert len(seen_ports) == 2
