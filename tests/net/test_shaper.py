"""Unit tests for the token-bucket shaper (the rshaper stand-in)."""

from __future__ import annotations

import pytest

from repro.net import TokenBucket


class TestTokenBucket:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=1e6, burst_bytes=0)

    def test_burst_passes_immediately(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=10000)  # 1 MB/s
        assert tb.reserve(5000, t=0.0) == 0.0

    def test_second_packet_waits_for_refill(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=1000)  # 1 MB/s, 1 KB burst
        assert tb.reserve(1000, 0.0) == 0.0
        start = tb.reserve(1000, 0.0)
        assert start == pytest.approx(1000 / 1e6)

    def test_sustained_rate_converges(self):
        rate_bytes = 1e6
        tb = TokenBucket(rate_bps=rate_bytes * 8, burst_bytes=1500)
        t = 0.0
        total = 0
        for _ in range(1000):
            t = tb.reserve(1500, t)
            total += 1500
        assert total / t == pytest.approx(rate_bytes, rel=0.01)

    def test_idle_time_refills_but_caps_at_burst(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=2000)
        tb.reserve(2000, 0.0)  # drain
        assert tb.tokens_at(100.0) == 2000  # capped, not 100 MB

    def test_oversized_packet_admitted_at_full_bucket(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=1000)
        start = tb.reserve(5000, 0.0)  # > burst
        assert start == 0.0  # admitted when full...
        # ...but the deficit delays the next packet by ~(5000-1000+1000)/rate
        nxt = tb.reserve(1000, 0.0)
        assert nxt > 4e-3

    def test_reserve_monotonic_in_time(self):
        tb = TokenBucket(rate_bps=1e6, burst_bytes=1500)
        starts = [tb.reserve(1500, 0.0) for _ in range(10)]
        assert starts == sorted(starts)
