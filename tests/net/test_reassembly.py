"""Fragment-reassembly edge cases: loss, purge, interleaving."""

from __future__ import annotations

from repro.net import Network, NetworkStack
from repro.net.node import REASSEMBLY_TIMEOUT


def make_pair(sim):
    net = Network(sim)
    a, b = net.add_host("a"), net.add_host("b")
    link = net.connect(a, b)
    net.build_routes()
    return net, NetworkStack(sim, a, net), NetworkStack(sim, b, net), link


class TestReassembly:
    def test_lost_fragment_means_no_delivery(self, sim):
        _, sa, sb, link = make_pair(sim)
        inbox = sb.udp_socket(9)
        # drop exactly one frame: the first fragment of the datagram
        dropped = {"n": 0}
        orig = link.ab.transmit

        def lossy(frame, extra_start_delay=0.0):
            if dropped["n"] == 0:
                dropped["n"] += 1
                link.ab.drops += 1
                return False
            return orig(frame, extra_start_delay)

        link.ab.transmit = lossy
        sa.udp_socket().sendto("b", 9, size=6000)
        sim.run()
        assert len(inbox.rx) == 0
        assert sb.node._reassembly  # partial buffer held

    def test_stale_partial_buffers_purged(self, sim):
        _, sa, sb, link = make_pair(sim)
        sb.udp_socket(9)
        # hand-craft a stale partial entry
        sb.node._reassembly[99999] = [100, 0.0]
        # push enough fresh partials to trigger the purge path
        from repro.net import Datagram, PROTO_UDP
        from repro.net.packet import Frame

        def advance_and_purge():
            yield sim.timeout(REASSEMBLY_TIMEOUT + 1.0)
            for i in range(300):
                d = Datagram(proto=PROTO_UDP, src=sa.node.addr,
                             dst=sb.node.addr, sport=1, dport=9, size=4000)
                frame = Frame(d, 1480, first=True)  # first fragment only
                sb.node._reassemble(frame)

        sim.process(advance_and_purge())
        sim.run()
        assert 99999 not in sb.node._reassembly
        assert sb.node.reassembly_failures >= 1

    def test_interleaved_datagrams_reassemble_independently(self, sim):
        _, sa, sb, _ = make_pair(sim)
        inbox = sb.udp_socket(9)
        s1 = sa.udp_socket()
        s2 = sa.udp_socket()
        # two multi-fragment datagrams enqueued back to back: their
        # fragments share the channel but must reassemble separately
        s1.sendto("b", 9, size=5000, payload="first")
        s2.sendto("b", 9, size=5000, payload="second")
        sim.run()
        payloads = [d.payload for d in inbox.rx.items]
        assert sorted(payloads) == ["first", "second"]
        assert all(d.size == 5000 for d in inbox.rx.items)
