"""Tests for the network stack: UDP demux, ICMP port-unreachable, taps."""

from __future__ import annotations

import pytest

from repro.net import Network, NetworkStack, PortInUse
from tests.conftest import run_process


@pytest.fixture
def pair(sim):
    net = Network(sim)
    a, b = net.add_host("a"), net.add_host("b")
    net.connect(a, b)
    net.build_routes()
    return net, NetworkStack(sim, a, net), NetworkStack(sim, b, net)


class TestUdpSockets:
    def test_bind_duplicate_port_rejected(self, sim, pair):
        _, sa, _ = pair
        sa.udp_socket(1000)
        with pytest.raises(PortInUse):
            sa.udp_socket(1000)

    def test_ephemeral_ports_unique(self, sim, pair):
        _, sa, _ = pair
        ports = {sa.udp_socket().port for _ in range(10)}
        assert len(ports) == 10

    def test_close_releases_port(self, sim, pair):
        _, sa, _ = pair
        sock = sa.udp_socket(1000)
        sock.close()
        sa.udp_socket(1000)  # no PortInUse

    def test_recv_timeout_returns_none(self, sim, pair):
        _, sa, _ = pair
        sock = sa.udp_socket()

        def p():
            result = yield from sock.recv_timeout(0.5)
            return (result, sim.now)

        assert run_process(sim, p()) == (None, 0.5)

    def test_recv_timeout_returns_datagram(self, sim, pair):
        _, sa, sb = pair
        sock = sb.udp_socket(4000)
        sa.udp_socket().sendto("b", 4000, size=10, payload="hi")

        def p():
            dgram = yield from sock.recv_timeout(5.0)
            return dgram.payload

        assert run_process(sim, p()) == "hi"

    def test_rcvbuf_overflow_drops(self, sim, pair):
        _, sa, sb = pair
        sock = sb.udp_socket(4000)
        sock.rx.capacity = 3
        sender = sa.udp_socket()
        for _ in range(10):
            sender.sendto("b", 4000, size=10)
        sim.run()
        assert len(sock.rx) == 3
        assert sock.rx.dropped == 7


class TestIcmp:
    def test_closed_port_triggers_port_unreachable(self, sim, pair):
        _, sa, _ = pair
        tap = sa.icmp_tap()
        probe = sa.udp_socket().sendto("b", 33434, size=100)

        def p():
            err = yield tap.get()
            return (err.src, err.ref)

        src, ref = run_process(sim, p())
        assert ref == probe.id
        assert src == pair[0].resolve("b")

    def test_open_port_does_not_echo(self, sim, pair):
        _, sa, sb = pair
        sb.udp_socket(33434)  # now bound
        tap = sa.icmp_tap()
        sa.udp_socket().sendto("b", 33434, size=100)
        sim.run()
        assert len(tap) == 0
        assert sb.icmp_sent == 0

    def test_multiple_taps_all_receive(self, sim, pair):
        _, sa, _ = pair
        taps = [sa.icmp_tap() for _ in range(3)]
        sa.udp_socket().sendto("b", 33434, size=100)
        sim.run()
        assert all(len(t) == 1 for t in taps)

    def test_echo_timing_scales_with_probe_size(self, sim, pair):
        """Bigger probes take longer to echo — the premise of Eq 3.1."""
        _, sa, _ = pair
        tap = sa.icmp_tap()
        rtts = {}

        def p():
            for size in (100, 5900):
                t0 = sim.now
                probe = sa.udp_socket().sendto("b", 33434, size=size)
                while True:
                    err = yield tap.get()
                    if err.ref == probe.id:
                        break
                rtts[size] = sim.now - t0

        run_process(sim, p())
        assert rtts[5900] > rtts[100] * 2


class TestStackGuards:
    def test_second_stack_on_node_rejected(self, sim, pair):
        net, sa, _ = pair
        with pytest.raises(RuntimeError):
            NetworkStack(sim, sa.node, net)
