"""Tests for nodes, NICs, topology building and routing."""

from __future__ import annotations

import pytest

from repro.net import Datagram, Network, NetworkStack, PROTO_UDP


def build_line(sim, n_routers=1, **link_kw):
    """a - r1 - ... - rN - b"""
    net = Network(sim)
    a = net.add_host("a")
    b = net.add_host("b")
    prev = a
    for i in range(n_routers):
        r = net.add_router(f"r{i}")
        net.connect(prev, r, **link_kw)
        prev = r
    net.connect(prev, b, **link_kw)
    net.build_routes()
    return net, a, b


class TestTopology:
    def test_duplicate_node_name_rejected(self, sim):
        net = Network(sim)
        net.add_host("x")
        with pytest.raises(ValueError):
            net.add_host("x")

    def test_addresses_allocated_per_subnet(self, sim):
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        net.connect(a, b, subnet="10.1.2")
        assert a.addr == "10.1.2.1"
        assert b.addr == "10.1.2.2"

    def test_resolve_hostname_and_addr(self, sim):
        net, a, b = build_line(sim)
        assert net.resolve("b") == b.addr
        assert net.resolve(b.addr) == b.addr
        with pytest.raises(KeyError):
            net.resolve("nonexistent")

    def test_path_hops(self, sim):
        net, a, b = build_line(sim, n_routers=2)
        assert net.path_hops("a", "b") == ["a", "r0", "r1", "b"]

    def test_routes_prefer_fewer_hops_at_equal_delay(self, sim):
        net = Network(sim)
        a, b, c = net.add_host("a"), net.add_host("b"), net.add_host("c")
        net.connect(a, b, delay=1e-3)
        net.connect(a, c, delay=1e-3)
        net.connect(c, b, delay=1e-3)
        net.build_routes()
        assert net.path_hops("a", "b") == ["a", "b"]

    def test_routes_prefer_lower_delay(self, sim):
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        r_fast, r_slow = net.add_router("fast"), net.add_router("slow")
        net.connect(a, r_slow, delay=50e-3)
        net.connect(r_slow, b, delay=50e-3)
        net.connect(a, r_fast, delay=1e-3)
        net.connect(r_fast, b, delay=1e-3)
        net.build_routes()
        assert "fast" in net.path_hops("a", "b")


class TestDelivery:
    def test_udp_delivery_end_to_end(self, sim):
        net, a, b = build_line(sim, n_routers=2)
        sa, sb = NetworkStack(sim, a, net), NetworkStack(sim, b, net)
        inbox = sb.udp_socket(5000)
        sa.udp_socket(1234).sendto("b", 5000, size=100, payload="hello")
        got = {}

        def rx():
            dgram = yield inbox.recv()
            got["payload"] = dgram.payload
            got["src"] = dgram.src

        sim.process(rx())
        sim.run()
        assert got == {"payload": "hello", "src": a.addr}

    def test_fragmented_datagram_reassembles_at_destination(self, sim):
        net, a, b = build_line(sim, n_routers=1)
        sa, sb = NetworkStack(sim, a, net), NetworkStack(sim, b, net)
        inbox = sb.udp_socket(5000)
        sa.udp_socket().sendto("b", 5000, size=6000, payload="big")
        got = []

        def rx():
            dgram = yield inbox.recv()
            got.append(dgram.size)

        sim.process(rx())
        sim.run()
        assert got == [6000]  # one datagram, not one per fragment

    def test_loopback_delivery_without_nic(self, sim):
        net, a, b = build_line(sim)
        sa = NetworkStack(sim, a, net)
        inbox = sa.udp_socket(7000)
        sa.udp_socket().sendto(a.addr, 7000, size=10, payload="self")
        got = []

        def rx():
            dgram = yield inbox.recv()
            got.append((dgram.payload, sim.now))

        sim.process(rx())
        sim.run()
        assert got[0][0] == "self"
        assert got[0][1] < 1e-3  # loopback is near-instant

    def test_no_route_counts(self, sim):
        net, a, b = build_line(sim)
        sa = NetworkStack(sim, a, net)
        dgram = Datagram(proto=PROTO_UDP, src=a.addr, dst="203.0.113.9",
                         sport=1, dport=2, size=10)
        assert not a.send(dgram)
        assert a.no_route == 1

    def test_nic_counters_track_traffic(self, sim):
        net, a, b = build_line(sim)
        sa, sb = NetworkStack(sim, a, net), NetworkStack(sim, b, net)
        sb.udp_socket(5000)
        sa.udp_socket().sendto("b", 5000, size=3000)
        sim.run()
        nic_a, nic_b = a.nics[0], b.nics[0]
        assert nic_a.tx_packets == 3  # 3 fragments
        assert nic_b.rx_packets == 3
        assert nic_a.tx_bytes == nic_b.rx_bytes > 3000

    def test_ttl_expiry_drops(self, sim):
        net, a, b = build_line(sim, n_routers=3)
        sa, sb = NetworkStack(sim, a, net), NetworkStack(sim, b, net)
        inbox = sb.udp_socket(5000)
        d = Datagram(proto=PROTO_UDP, src=a.addr, dst=b.addr,
                     sport=1, dport=5000, size=10, ttl=2)
        a.send(d)
        sim.run()
        assert len(inbox.rx) == 0  # died at the second router


class TestInitSpeedEffect:
    def test_router_nics_have_no_init_term(self, sim):
        net, a, b = build_line(sim, n_routers=1)
        router_nics = [nic for n in net.nodes.values() if n.is_router for nic in n.nics]
        assert router_nics and all(nic.init_speed_bps is None for nic in router_nics)

    def test_host_nics_have_init_term(self, sim):
        net, a, b = build_line(sim)
        assert a.nics[0].init_speed_bps == 25e6

    def test_init_delay_caps_at_mtu(self, sim):
        net, a, b = build_line(sim)
        nic = a.nics[0]
        small = Datagram(proto=PROTO_UDP, src=a.addr, dst=b.addr,
                         sport=1, dport=2, size=100)
        huge = Datagram(proto=PROTO_UDP, src=a.addr, dst=b.addr,
                        sport=1, dport=2, size=60000)
        assert nic._init_delay(small.first_fragment_size(nic.mtu)) < \
            nic._init_delay(huge.first_fragment_size(nic.mtu))
        assert nic._init_delay(huge.first_fragment_size(nic.mtu)) == \
            pytest.approx(1500 * 8 / 25e6)
