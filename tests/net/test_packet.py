"""Unit tests for datagrams, frames and fragmentation arithmetic."""

from __future__ import annotations

import pytest

from repro.net import (
    Datagram,
    IP_HEADER,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_HEADER,
    UDP_HEADER,
    fragment_sizes,
)
from repro.net.packet import Frame


class TestFragmentSizes:
    def test_single_fragment_when_fits(self):
        assert fragment_sizes(100, 1500) == [100 + IP_HEADER]

    def test_exact_fit_is_single_fragment(self):
        assert fragment_sizes(1480, 1500) == [1500]

    def test_one_byte_over_splits(self):
        sizes = fragment_sizes(1481, 1500)
        assert sizes == [1500, 1 + IP_HEADER]

    def test_total_payload_conserved(self):
        for transport in (1, 100, 1480, 1481, 6000, 65535):
            sizes = fragment_sizes(transport, 1500)
            payload = sum(s - IP_HEADER for s in sizes)
            assert payload == transport

    def test_every_fragment_within_mtu(self):
        for mtu in (500, 1000, 1500):
            for s in fragment_sizes(6000, mtu):
                assert s <= mtu

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            fragment_sizes(100, IP_HEADER)


class TestDatagram:
    def _dgram(self, proto=PROTO_UDP, size=1000):
        return Datagram(proto=proto, src="10.0.0.1", dst="10.0.0.2",
                        sport=1, dport=2, size=size)

    def test_transport_bytes_adds_proto_header(self):
        assert self._dgram(PROTO_UDP, 100).transport_bytes == 100 + UDP_HEADER
        assert self._dgram(PROTO_TCP, 100).transport_bytes == 100 + TCP_HEADER

    def test_wire_size_includes_per_fragment_ip_headers(self):
        d = self._dgram(size=3000)
        nfrags = d.n_fragments(1500)
        assert d.wire_size(1500) == d.transport_bytes + nfrags * IP_HEADER

    def test_first_fragment_capped_at_mtu(self):
        assert self._dgram(size=6000).first_fragment_size(1500) == 1500
        assert self._dgram(size=10).first_fragment_size(1500) == 10 + UDP_HEADER + IP_HEADER

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            self._dgram(size=-1)

    def test_unknown_proto_rejected(self):
        with pytest.raises(ValueError):
            self._dgram(proto="quic")

    def test_ids_unique(self):
        assert self._dgram().id != self._dgram().id

    def test_reply_skeleton_swaps_endpoints(self):
        d = self._dgram()
        r = d.reply_skeleton(PROTO_ICMP, 36)
        assert (r.src, r.dst) == (d.dst, d.src)
        assert (r.sport, r.dport) == (d.dport, d.sport)
        assert r.ref == d.id


class TestFrame:
    def _dgram(self, size=3000):
        return Datagram(proto=PROTO_UDP, src="a", dst="b", sport=1, dport=2, size=size)

    def test_fragment_wire_is_payload_plus_ip(self):
        f = Frame(self._dgram(), payload_bytes=1480, first=True)
        assert f.wire_at(1500) == 1500

    def test_burst_wire_counts_all_fragments(self):
        d = Datagram(proto=PROTO_TCP, src="a", dst="b", sport=1, dport=2, size=2960)
        f = Frame(d, d.transport_bytes, first=True, burst=True)
        assert f.wire_at(1500) == d.wire_size(1500)

    def test_split_preserves_payload_and_first_flag(self):
        f = Frame(self._dgram(), payload_bytes=3000, first=True)
        pieces = f.split(1000)
        assert sum(p.payload_bytes for p in pieces) == 3000
        assert [p.first for p in pieces] == [True] + [False] * (len(pieces) - 1)
        for p in pieces:
            assert p.payload_bytes + IP_HEADER <= 1000

    def test_split_noop_when_fits(self):
        f = Frame(self._dgram(), payload_bytes=500, first=True)
        assert f.split(1500) == [f]

    def test_burst_never_splits(self):
        d = Datagram(proto=PROTO_TCP, src="a", dst="b", sport=1, dport=2, size=9000)
        f = Frame(d, d.transport_bytes, first=True, burst=True)
        assert f.split(1500) == [f]
