"""End-to-end integration: the full pipeline on the thesis testbed.

probe -> sysmon -> transmitter -> receiver -> wizard -> client -> app,
all over the simulated network, in both operating modes.
"""

from __future__ import annotations

from repro.apps import MatMulMaster, MatMulWorker, shape_host_egress
from repro.bench.experiments import _drive
from repro.cluster import Deployment, build_testbed
from repro.core import Config, Mode
from repro.host import SuperPiWorkload

SERVER_NAMES = ("sagit", "dalmatian", "mimas", "telesto", "lhost", "helene",
                "phoebe", "calypso", "dione", "titan-x", "pandora-x")


def full_deployment(mode=None, config=None):
    cluster = build_testbed(seed=23)
    cfg = config or Config(probe_interval=1.0, transmit_interval=1.0)
    dep = Deployment(cluster, wizard_host=cluster.host("dalmatian"),
                     config=cfg, mode=mode)
    dep.add_group("lab", monitor_host=cluster.host("dalmatian"),
                  servers=[cluster.host(n) for n in SERVER_NAMES])
    dep.start()
    return cluster, dep


class TestEndToEnd:
    def test_bogomips_selection_finds_the_p4_24s(self):
        cluster, dep = full_deployment()
        client = dep.client_for(cluster.host("sagit"))
        out = {}

        def p():
            yield cluster.sim.timeout(dep.warm_up_seconds())
            reply = yield from client.request_servers(
                "(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && "
                "(host_memory_free > 5)", 2)
            out["names"] = sorted(
                cluster.network.hostname_of(a) for a in reply.servers)

        proc = cluster.sim.process(p())
        _drive(cluster, proc)
        assert out["names"] == ["dalmatian", "dione"]

    def test_load_requirement_avoids_busy_servers(self):
        cluster, dep = full_deployment()
        for name in ("helene", "telesto", "mimas"):
            SuperPiWorkload(cluster.sim, cluster.host(name).machine).start()
        client = dep.client_for(cluster.host("sagit"))
        out = {}

        def p():
            yield cluster.sim.timeout(60.0)  # load_1 must build past 0.5
            reply = yield from client.request_servers(
                "(host_cpu_free > 0.9) && (host_system_load1 < 0.5)", 11)
            out["names"] = {cluster.network.hostname_of(a)
                            for a in reply.servers}

        proc = cluster.sim.process(p())
        _drive(cluster, proc)
        assert out["names"].isdisjoint({"helene", "telesto", "mimas"})
        assert len(out["names"]) == 8

    def test_blacklist_excludes_hosts_end_to_end(self):
        cluster, dep = full_deployment()
        client = dep.client_for(cluster.host("sagit"))
        out = {}

        def p():
            yield cluster.sim.timeout(dep.warm_up_seconds())
            reply = yield from client.request_servers(
                "(host_cpu_free > 0.9) && (user_denied_host1 = telesto) && "
                "(user_denied_host2 = mimas) && (user_denied_host3 = phoebe)",
                11)
            out["names"] = {cluster.network.hostname_of(a)
                            for a in reply.servers}

        proc = cluster.sim.process(p())
        _drive(cluster, proc)
        assert out["names"].isdisjoint({"telesto", "mimas", "phoebe"})
        assert len(out["names"]) == 8

    def test_rank_option_returns_largest_memory(self):
        cluster, dep = full_deployment()
        client = dep.client_for(cluster.host("sagit"))
        out = {}

        def p():
            yield cluster.sim.timeout(dep.warm_up_seconds())
            reply = yield from client.request_servers(
                "host_cpu_free > 0.5", 2, option="rank:host_memory_free")
            out["names"] = sorted(
                cluster.network.hostname_of(a) for a in reply.servers)

        proc = cluster.sim.process(p())
        _drive(cluster, proc)
        # the two 512 MB machines
        assert out["names"] == ["dalmatian", "dione"]

    def test_smart_sockets_drive_matmul(self):
        cluster, dep = full_deployment()
        for name in SERVER_NAMES:
            MatMulWorker(cluster.host(name), port=9000, mss=8192).start()
        client = dep.client_for(cluster.host("sagit"))
        out = {}

        def p():
            yield cluster.sim.timeout(dep.warm_up_seconds())
            conns = yield from client.smart_sockets(
                "host_cpu_bogomips > 4000", 2, mss=8192)
            master = MatMulMaster(cluster.host("sagit"))
            result = yield from master.run(conns, n=300, blk=100)
            out["result"] = result

        proc = cluster.sim.process(p())
        _drive(cluster, proc)
        assert sum(out["result"].blocks_per_server.values()) == 9

    def test_distributed_mode_full_path(self):
        cluster, dep = full_deployment(mode=Mode.DISTRIBUTED)
        client = dep.client_for(cluster.host("sagit"))
        out = {}

        def p():
            yield cluster.sim.timeout(5.0)
            reply = yield from client.request_servers("host_cpu_free > 0.5", 4)
            out["n"] = len(reply.servers)
            out["pulls"] = dep.groups["lab"].transmitter.snapshots_sent

        proc = cluster.sim.process(p())
        _drive(cluster, proc)
        assert out["n"] == 4
        assert out["pulls"] == 1

    def test_network_bw_selection_with_shapers(self):
        """A mini massd setup inside the integration suite."""
        cluster = build_testbed(seed=29)
        cfg = Config(probe_interval=1.0, transmit_interval=1.0,
                     netmon_interval=1.0)
        dep = Deployment(cluster, wizard_host=cluster.host("dalmatian"),
                         config=cfg)
        dep.add_group("campus", monitor_host=cluster.host("sagit"), servers=[])
        dep.add_group("g1", monitor_host=cluster.host("mimas"),
                      servers=[cluster.host("mimas"), cluster.host("telesto")])
        dep.add_group("g2", monitor_host=cluster.host("dione"),
                      servers=[cluster.host("dione"), cluster.host("titan-x")])
        for n in ("mimas", "telesto"):
            shape_host_egress(cluster.host(n), 8.0)
        for n in ("dione", "titan-x"):
            shape_host_egress(cluster.host(n), 2.0)
        dep.start()
        client = dep.client_for(cluster.host("sagit"))
        out = {}

        def p():
            yield cluster.sim.timeout(dep.warm_up_seconds() + 4.0)
            reply = yield from client.request_servers("monitor_network_bw > 6", 2)
            out["names"] = sorted(
                cluster.network.hostname_of(a) for a in reply.servers)

        proc = cluster.sim.process(p())
        _drive(cluster, proc)
        assert out["names"] == ["mimas", "telesto"]
