"""Tests for the massd massive-download application."""

from __future__ import annotations

import pytest

from repro.apps import FileServer, MassdClient, shape_host_egress
from repro.bench.experiments import _drive
from repro.cluster import Cluster


def make_world(server_specs):
    """server_specs: list of (name, shaper_mbps_or_None)."""
    cluster = Cluster(seed=19)
    client = cluster.add_host("client")
    sw = cluster.add_switch("sw")
    cluster.link(client, sw)
    servers = []
    for name, mbps in server_specs:
        h = cluster.add_host(name)
        cluster.link(h, sw)
        servers.append((h, mbps))
    cluster.finalize()
    for h, mbps in servers:
        if mbps:
            shape_host_egress(h, mbps)
        FileServer(h, port=9000, mss=8192).start()
    return cluster, client, [h for h, _ in servers]


def run_download(cluster, client, server_hosts, data_kb, blk_kb):
    out = {}

    def driver():
        conns = []
        for h in server_hosts:
            conn = yield from client.stack.tcp.connect(h.addr, 9000, mss=8192)
            conns.append(conn)
        massd = MassdClient(client)
        result = yield from massd.run(conns, data_kb=data_kb, blk_kb=blk_kb)
        out["result"] = result

    proc = cluster.sim.process(driver())
    _drive(cluster, proc, horizon=360000.0)
    return out["result"]


class TestDownload:
    def test_all_bytes_arrive(self):
        cluster, client, servers = make_world([("s1", None), ("s2", None)])
        result = run_download(cluster, client, servers, data_kb=1000, blk_kb=100)
        assert sum(result.blocks_per_server.values()) == 10
        assert result.total_bytes == 1000 * 1024

    def test_uneven_tail_block(self):
        cluster, client, servers = make_world([("s1", None)])
        result = run_download(cluster, client, servers, data_kb=250, blk_kb=100)
        assert sum(result.blocks_per_server.values()) == 3  # 100+100+50

    def test_throughput_capped_by_shaper(self):
        cluster, client, servers = make_world([("s1", 5.0)])
        result = run_download(cluster, client, servers, data_kb=2000, blk_kb=100)
        assert result.throughput_mbps == pytest.approx(5.0, rel=0.12)

    def test_fast_server_serves_more_blocks(self):
        cluster, client, servers = make_world([("fast", 8.0), ("slow", 1.0)])
        result = run_download(cluster, client, servers, data_kb=3000, blk_kb=100)
        fast, slow = servers[0].addr, servers[1].addr
        assert result.blocks_per_server[fast] > 3 * result.blocks_per_server[slow]

    def test_aggregate_throughput_sums_shapers(self):
        cluster, client, servers = make_world([("s1", 4.0), ("s2", 4.0)])
        result = run_download(cluster, client, servers, data_kb=4000, blk_kb=100)
        assert result.throughput_mbps == pytest.approx(8.0, rel=0.15)

    def test_invalid_args_rejected(self):
        cluster, client, servers = make_world([("s1", None)])
        massd = MassdClient(client)
        with pytest.raises(ValueError):
            list(massd.run([], data_kb=100, blk_kb=10))

    def test_shaper_requires_positive_rate(self):
        cluster, client, servers = make_world([("s1", None)])
        with pytest.raises(ValueError):
            shape_host_egress(servers[0], 0.0)

    def test_disk_backed_server_counts_reads(self):
        cluster = Cluster(seed=20)
        client = cluster.add_host("client")
        server = cluster.add_host("server")
        cluster.link(client, server)
        cluster.finalize()
        FileServer(server, port=9000, read_from_disk=True).start()
        result_holder = {}

        def driver():
            conn = yield from client.stack.tcp.connect(server.addr, 9000)
            massd = MassdClient(client)
            result = yield from massd.run([conn], data_kb=500, blk_kb=100)
            result_holder["r"] = result

        proc = cluster.sim.process(driver())
        _drive(cluster, proc)
        assert server.machine.disk.rreq == 5
        assert server.machine.disk.rblocks == 500 * 1024 // 512
