"""Tests for the distributed matrix-multiplication application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    MatMulMaster,
    MatMulWorker,
    block_grid,
    blocked_multiply,
    flops_for,
    local_multiply,
)
from repro.cluster import Cluster
from repro.bench.experiments import _drive


class TestNumerics:
    def test_local_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.random((40, 40))
        b = rng.random((40, 40))
        np.testing.assert_allclose(local_multiply(a, b), a @ b)

    def test_blocked_matches_local(self):
        rng = np.random.default_rng(1)
        a = rng.random((50, 50))
        b = rng.random((50, 50))
        for blk in (7, 10, 25, 50, 64):
            np.testing.assert_allclose(blocked_multiply(a, b, blk), a @ b)

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(ValueError):
            local_multiply(np.zeros((3, 4)), np.zeros((3, 4)))

    def test_block_grid_covers_matrix_exactly(self):
        for n, blk in ((1500, 600), (1500, 200), (10, 3), (8, 8)):
            cells = block_grid(n, blk)
            assert sum(r * c for _, r, _, c in cells) == n * n

    def test_block_grid_uneven_tail(self):
        cells = block_grid(1500, 600)
        sizes = sorted({r for _, r, _, _ in cells})
        assert sizes == [300, 600]
        assert len(cells) == 9

    def test_block_grid_invalid(self):
        with pytest.raises(ValueError):
            block_grid(0, 10)

    def test_flops_formula(self):
        assert flops_for(10, 20, 30) == 2 * 10 * 20 * 30


def make_world(worker_specs):
    """worker_specs: list of (name, matmul_flops)."""
    cluster = Cluster(seed=17)
    master = cluster.add_host("master")
    sw = cluster.add_switch("sw")
    cluster.link(master, sw)
    workers = []
    for name, flops in worker_specs:
        h = cluster.add_host(name, speeds={"matmul": flops})
        cluster.link(h, sw)
        w = MatMulWorker(h, port=9000, mss=8192)
        workers.append((h, w))
    cluster.finalize()
    for _, w in workers:
        w.start()
    return cluster, master, workers


def run_distributed(cluster, master, worker_hosts, n, blk, a=None, b=None):
    out = {}

    def driver():
        conns = []
        for h in worker_hosts:
            conn = yield from master.stack.tcp.connect(h.addr, 9000, mss=8192)
            conns.append(conn)
        prog = MatMulMaster(master)
        result = yield from prog.run(conns, n=n, blk=blk, a=a, b=b)
        out["result"] = result

    proc = cluster.sim.process(driver())
    _drive(cluster, proc)
    return out["result"]


class TestDistributedRun:
    def test_distributed_product_matches_numpy(self):
        cluster, master, workers = make_world([("w1", 1e9), ("w2", 1e9)])
        rng = np.random.default_rng(2)
        n = 60
        a, b = rng.random((n, n)), rng.random((n, n))
        result = run_distributed(cluster, master,
                                 [h for h, _ in workers], n, 16, a=a, b=b)
        np.testing.assert_allclose(result.product, a @ b)

    def test_all_blocks_processed_once(self):
        cluster, master, workers = make_world([("w1", 1e9), ("w2", 1e9)])
        result = run_distributed(cluster, master,
                                 [h for h, _ in workers], 100, 30)
        total = sum(result.blocks_per_server.values())
        assert total == len(block_grid(100, 30))
        assert sum(w.blocks_done for _, w in workers) == total

    def test_faster_worker_takes_more_blocks(self):
        # compute-dominant regime (slow CPUs, few large blocks) so the block
        # split reflects CPU speed rather than link fairness
        cluster, master, workers = make_world([("fast", 4e7), ("slow", 1e7)])
        result = run_distributed(cluster, master,
                                 [h for h, _ in workers], 400, 100)
        fast_addr = workers[0][0].addr
        slow_addr = workers[1][0].addr
        assert result.blocks_per_server[fast_addr] > \
            result.blocks_per_server[slow_addr] * 2

    def test_two_workers_faster_than_one(self):
        spec = [("w1", 2e7), ("w2", 2e7)]
        cluster1, master1, workers1 = make_world(spec[:1])
        t_one = run_distributed(cluster1, master1,
                                [workers1[0][0]], 300, 100).elapsed
        cluster2, master2, workers2 = make_world(spec)
        t_two = run_distributed(cluster2, master2,
                                [h for h, _ in workers2], 300, 100).elapsed
        assert t_two < t_one * 0.7

    def test_elapsed_close_to_compute_bound(self):
        """With slow CPUs and fast links, wall time ≈ flops / total speed."""
        cluster, master, workers = make_world([("w1", 1e7), ("w2", 1e7)])
        n = 300
        result = run_distributed(cluster, master,
                                 [h for h, _ in workers], n, 100)
        compute_bound = flops_for(n, n, n) / 2e7
        assert result.elapsed >= compute_bound
        assert result.elapsed < compute_bound * 1.6

    def test_no_connections_rejected(self):
        cluster, master, _ = make_world([("w1", 1e8)])
        prog = MatMulMaster(master)
        with pytest.raises(ValueError):
            list(prog.run([], n=10, blk=5))

    def test_matrix_shape_validated(self):
        cluster, master, workers = make_world([("w1", 1e8)])

        def driver():
            conn = yield from master.stack.tcp.connect(
                workers[0][0].addr, 9000)
            prog = MatMulMaster(master)
            with pytest.raises(ValueError):
                yield from prog.run([conn], n=10, blk=5,
                                    a=np.zeros((3, 3)), b=np.zeros((10, 10)))

        proc = cluster.sim.process(driver())
        _drive(cluster, proc)
