"""Property-based tests (hypothesis) for kernel and host-model invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.host import CPU
from repro.sim import Simulator, Store

delays = st.floats(min_value=0.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


class TestKernelProperties:
    @given(st.lists(delays, min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_events_fire_in_time_order(self, ds):
        sim = Simulator()
        fired = []
        for d in ds:
            sim.timeout(d).add_callback(lambda e, d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(ds)
        assert sim.now == max(ds)

    @given(st.lists(delays, min_size=1, max_size=25))
    @settings(max_examples=50)
    def test_processes_see_exactly_their_delay(self, ds):
        sim = Simulator()
        results = []

        def sleeper(d):
            yield sim.timeout(d)
            results.append((d, sim.now))

        for d in ds:
            sim.process(sleeper(d))
        sim.run()
        assert all(abs(now - d) < 1e-12 for d, now in results)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_store_preserves_order_and_items(self, items):
        sim = Simulator()
        store = Store(sim)
        out = []

        def consumer():
            for _ in items:
                out.append((yield store.get()))

        sim.process(consumer())
        for x in items:
            store.put(x)
        sim.run()
        assert out == items


class TestCpuProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1,
                    max_size=10))
    @settings(max_examples=50)
    def test_work_conservation(self, works):
        """All tasks submitted at t=0 finish by exactly sum(work) — PS never
        wastes capacity while work remains."""
        sim = Simulator()
        cpu = CPU(sim)
        ends = []

        def task(w):
            yield cpu.run(w)
            ends.append(sim.now)

        for w in works:
            sim.process(task(w))
        sim.run()
        assert len(ends) == len(works)
        assert math.isclose(max(ends), sum(works), rel_tol=1e-9)

    @given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=2,
                    max_size=10))
    @settings(max_examples=50)
    def test_shorter_tasks_never_finish_later(self, works):
        """PS fairness: completion order equals work order for simultaneous
        arrivals."""
        sim = Simulator()
        cpu = CPU(sim)
        finish = {}

        def task(i, w):
            yield cpu.run(w)
            finish[i] = sim.now

        for i, w in enumerate(works):
            sim.process(task(i, w))
        sim.run()
        by_work = sorted(range(len(works)), key=lambda i: works[i])
        finishes = [finish[i] for i in by_work]
        assert all(a <= b + 1e-9 for a, b in zip(finishes, finishes[1:]))

    @given(st.floats(min_value=0.1, max_value=10.0),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=40)
    def test_busy_time_equals_makespan_when_saturated(self, work, n):
        sim = Simulator()
        cpu = CPU(sim)

        def task():
            yield cpu.run(work)

        for _ in range(n):
            sim.process(task())
        sim.run()
        assert math.isclose(cpu.utilisation_seconds(), n * work, rel_tol=1e-9)


class TestReportProperties:
    @given(st.dictionaries(
        st.sampled_from([
            "host_cpu_free", "host_system_load1", "host_memory_free",
            "host_cpu_bogomips", "host_network_tbytesps",
        ]),
        st.floats(min_value=0, max_value=1e12, allow_nan=False,
                  allow_infinity=False),
        min_size=1,
    ))
    @settings(max_examples=60)
    def test_wire_roundtrip_preserves_values(self, values):
        from repro.core import ServerStatusReport

        report = ServerStatusReport(host="h", addr="10.0.0.1", group="g",
                                    values=values)
        back = ServerStatusReport.from_wire(report.to_wire())
        for key, val in values.items():
            assert math.isclose(back.values[key], val, rel_tol=1e-5,
                                abs_tol=1e-6)
