"""Tests for the event tracer."""

from __future__ import annotations

import pytest

from repro.net import Network, NetworkStack
from repro.sim import Tracer, attach_node_tap


class TestTracer:
    def test_records_carry_sim_time(self, sim):
        tracer = Tracer(sim)

        def p():
            tracer.log("app", "start")
            yield sim.timeout(2.5)
            tracer.log("app", "done")

        sim.process(p())
        sim.run()
        assert [(r.time, r.message) for r in tracer.records] == [
            (0.0, "start"), (2.5, "done"),
        ]

    def test_category_filter(self, sim):
        tracer = Tracer(sim, categories={"keep"})
        tracer.log("keep", "a")
        tracer.log("drop", "b")
        assert [r.message for r in tracer.records] == ["a"]
        assert not tracer.wants("drop")

    def test_bounded_with_drop_count(self, sim):
        tracer = Tracer(sim, max_records=3)
        for i in range(5):
            tracer.log("x", str(i))
        assert len(tracer.records) == 3
        assert tracer.dropped == 2
        assert "2 records dropped" in tracer.format()

    def test_select_by_category_and_time(self, sim):
        tracer = Tracer(sim)

        def p():
            tracer.log("a", "early")
            yield sim.timeout(10)
            tracer.log("a", "late")
            tracer.log("b", "other")

        sim.process(p())
        sim.run()
        assert [r.message for r in tracer.select("a", since=5.0)] == ["late"]

    def test_format_last_n(self, sim):
        tracer = Tracer(sim)
        for i in range(10):
            tracer.log("x", f"m{i}")
        out = tracer.format(last=2)
        assert "m8" in out and "m9" in out and "m7" not in out

    def test_format_last_n_announces_elided_head(self, sim):
        tracer = Tracer(sim)
        for i in range(10):
            tracer.log("x", f"m{i}")
        out = tracer.format(last=2)
        assert out.splitlines()[0] == "... showing last 2 of 10 records"
        # no elision note when everything is shown
        assert "showing last" not in tracer.format()
        assert "showing last" not in tracer.format(last=10)

    def test_format_combines_elision_and_drop_footer(self, sim):
        tracer = Tracer(sim, max_records=4)
        for i in range(6):
            tracer.log("x", str(i))
        lines = tracer.format(last=2).splitlines()
        assert lines[0] == "... showing last 2 of 4 records"
        assert lines[-1] == "... 2 records dropped (max_records)"
        assert [ln.split()[-1] for ln in lines[1:-1]] == ["2", "3"]

    def test_clear(self, sim):
        tracer = Tracer(sim, max_records=1)
        tracer.log("x", "1")
        tracer.log("x", "2")
        tracer.clear()
        assert tracer.records == [] and tracer.dropped == 0

    def test_invalid_max_records(self, sim):
        with pytest.raises(ValueError):
            Tracer(sim, max_records=0)


class TestNodeTap:
    def test_traces_local_deliveries(self, sim):
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        net.connect(a, b)
        net.build_routes()
        sa, sb = NetworkStack(sim, a, net), NetworkStack(sim, b, net)
        sb.udp_socket(9)
        tracer = Tracer(sim)
        attach_node_tap(tracer, b)
        sa.udp_socket().sendto("b", 9, size=100, payload="x")
        sim.run()
        assert len(tracer.records) == 1
        assert "udp" in tracer.records[0].message
        assert "100B" in tracer.records[0].message

    def test_preserves_existing_tap(self, sim):
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        net.connect(a, b)
        net.build_routes()
        sa, sb = NetworkStack(sim, a, net), NetworkStack(sim, b, net)
        sb.udp_socket(9)
        seen = []
        b.tap = lambda d, n: seen.append(d.id)
        tracer = Tracer(sim)
        attach_node_tap(tracer, b)
        sa.udp_socket().sendto("b", 9, size=50)
        sim.run()
        assert len(seen) == 1       # the original tap still fires
        assert len(tracer.records) == 1
