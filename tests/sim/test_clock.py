"""Unit tests for the skewable per-host wall clock (gray failures)."""

from __future__ import annotations

import pytest

from repro.sim import HostClock, Simulator


def advance(sim, seconds):
    """Run the simulator forward by exactly ``seconds``."""
    target = sim.now + seconds

    def p():
        yield sim.timeout(seconds)

    sim.process(p(), name="advance")
    sim.run()
    assert sim.now == target


class TestHostClock:
    def test_healthy_clock_is_identity(self):
        sim = Simulator()
        clock = HostClock(sim)
        assert clock.now() == sim.now
        assert not clock.skewed
        advance(sim, 7.5)
        assert clock.now() == sim.now == 7.5

    def test_offset_steps_the_clock(self):
        sim = Simulator()
        clock = HostClock(sim)
        clock.set_skew(300.0)
        assert clock.skewed
        assert clock.now() == pytest.approx(300.0)
        advance(sim, 10.0)
        # a pure offset advances at true rate
        assert clock.now() == pytest.approx(310.0)

    def test_drift_accumulates_from_set_time(self):
        sim = Simulator()
        advance(sim, 5.0)
        clock = HostClock(sim)
        clock.set_skew(0.0, drift=0.01)  # 10 ms fast per second, from t=5
        assert clock.now() == pytest.approx(5.0)
        advance(sim, 100.0)
        assert clock.now() == pytest.approx(105.0 + 1.0)

    def test_offset_and_drift_compose(self):
        sim = Simulator()
        clock = HostClock(sim)
        clock.set_skew(-60.0, drift=-0.5)
        advance(sim, 10.0)
        assert clock.now() == pytest.approx(10.0 - 60.0 - 5.0)

    def test_reprogramming_is_an_ntp_step(self):
        """A second set_skew discards accumulated drift error instead of
        folding it in — the clock steps to exactly the requested skew."""
        sim = Simulator()
        clock = HostClock(sim)
        clock.set_skew(0.0, drift=1.0)  # runs 2x fast
        advance(sim, 10.0)
        assert clock.now() == pytest.approx(20.0)
        clock.set_skew(3.0)
        assert clock.now() == pytest.approx(13.0)

    def test_clear_skew_steps_back_to_true_time(self):
        sim = Simulator()
        clock = HostClock(sim)
        clock.set_skew(42.0, drift=0.1)
        advance(sim, 4.0)
        clock.clear_skew()
        assert not clock.skewed
        assert clock.now() == sim.now
