"""Tests for the happens-before race sanitizer (:mod:`repro.sim.hb`)."""

from __future__ import annotations

from repro.sim import (
    HBSanitizer,
    SharedMemory,
    Simulator,
    Store,
    shared,
)


def _world():
    sim = Simulator()
    sanitizer = sim.enable_sanitizer()
    shm = SharedMemory(sim)
    db = shared(shm.segment(1), name="db")
    return sim, sanitizer, shm, db


class TestRaceDetection:
    def test_unordered_write_read_is_a_race(self):
        sim, sanitizer, _, db = _world()

        def writer():
            yield sim.timeout(1.0)
            db.write({"x": 1})

        def reader():
            yield sim.timeout(1.0)
            db.read()

        sim.process(writer(), name="w")
        sim.process(reader(), name="r")
        sim.run()

        assert len(sanitizer.races) == 1
        race = sanitizer.races[0]
        assert race.var == "db"
        assert {race.first.op, race.second.op} == {"write", "read"}
        assert {race.first.thread_name, race.second.thread_name} == {"w", "r"}
        # stack-lite traces name the racing frames in this file
        assert "test_hb.py" in race.first.site
        assert "in writer" in race.first.site or "in reader" in race.first.site
        diag = race.to_diagnostic()
        assert diag.code == "REPRO300"
        assert "no happens-before edge" in diag.message

    def test_unordered_write_write_is_a_race(self):
        sim, sanitizer, _, db = _world()

        def w(val):
            yield sim.timeout(1.0)
            db.write(val)

        sim.process(w(1), name="w1")
        sim.process(w(2), name="w2")
        sim.run()
        assert len(sanitizer.races) == 1
        assert {sanitizer.races[0].first.op,
                sanitizer.races[0].second.op} == {"write"}

    def test_duplicate_race_pairs_report_once(self):
        sim, sanitizer, _, db = _world()

        def reader():
            yield sim.timeout(1.0)
            for _ in range(5):
                db.read()

        def writer():
            yield sim.timeout(1.0)
            db.write(0)

        sim.process(writer(), name="w")
        sim.process(reader(), name="r")
        sim.run()
        assert len(sanitizer.races) == 1

    def test_untracked_segment_is_invisible(self):
        sim = Simulator()
        sanitizer = sim.enable_sanitizer()
        seg = SharedMemory(sim).segment(7)  # no shared() wrapper

        def w():
            yield sim.timeout(1.0)
            seg.write(1)

        def r():
            yield sim.timeout(1.0)
            seg.read()

        sim.process(w())
        sim.process(r())
        sim.run()
        assert sanitizer.races == []
        assert sanitizer.accesses == 0


class TestHappensBeforeEdges:
    def test_lock_edge_suppresses_race(self):
        """Same timing as the racing case, but lock-ordered: clean."""
        sim, sanitizer, shm, db = _world()

        def locked(val):
            yield sim.timeout(1.0)
            yield from shm.locked_write(1, val)

        sim.process(locked(1), name="w1")
        sim.process(locked(2), name="w2")
        sim.run()
        assert sanitizer.races == []
        assert sanitizer.accesses >= 2

    def test_store_edge_orders_producer_and_consumer(self):
        sim, sanitizer, _, db = _world()
        chan = Store(sim)

        def producer():
            yield sim.timeout(1.0)
            db.write({"x": 1})
            chan.put("ready")

        def consumer():
            yield chan.get()
            db.read()

        sim.process(producer(), name="p")
        sim.process(consumer(), name="c")
        sim.run()
        assert sanitizer.races == []

    def test_process_join_orders_accesses(self):
        sim, sanitizer, _, db = _world()

        def child():
            yield sim.timeout(1.0)
            db.write(1)

        def parent():
            yield sim.process(child(), name="child")
            db.read()

        sim.process(parent(), name="parent")
        sim.run()
        assert sanitizer.races == []

    def test_condition_join_orders_accesses(self):
        """AnyOf/AllOf joins member clocks into the waiter."""
        sim, sanitizer, _, db = _world()

        def child(val):
            yield sim.timeout(1.0)
            db.write(val)

        def parent():
            kids = [sim.process(child(i), name=f"k{i}") for i in range(2)]
            yield sim.all_of(kids)
            db.read()

        sim.process(parent(), name="parent")
        sim.run()
        # the two children race with each other is real: both write at
        # t=1 with no edge — but parent's read after all_of is ordered
        write_read = [r for r in sanitizer.races
                      if "read" in (r.first.op, r.second.op)]
        assert write_read == []

    def test_root_init_writes_ordered_before_processes(self):
        """Setup writes from the root context happen-before every process
        spawned afterwards (boot events capture the root clock)."""
        sim, sanitizer, _, db = _world()
        db.write({"boot": True})

        def reader():
            yield sim.timeout(0.5)
            db.read()

        sim.process(reader(), name="r")
        sim.run()
        assert sanitizer.races == []


class TestSanitizerPlumbing:
    def test_off_by_default(self):
        sim = Simulator()
        assert sim._hb is None
        seg = shared(SharedMemory(sim).segment(1), name="db")
        seg.write(1)  # no sanitizer: plain write, nothing recorded

    def test_enable_returns_attached_instance(self):
        sim = Simulator()
        sanitizer = sim.enable_sanitizer()
        assert isinstance(sanitizer, HBSanitizer)
        assert sim._hb is sanitizer

    def test_summary_mentions_counts(self):
        sim, sanitizer, _, db = _world()
        db.write(1)
        sim.run()
        text = sanitizer.summary()
        assert "race(s)" in text and "tracked access(es)" in text

    def test_report_cap(self):
        sim, sanitizer, _, _ = _world()
        sanitizer.max_reports = 2
        shm = SharedMemory(sim)
        dbs = [shared(shm.segment(10 + i), name=f"v{i}") for i in range(4)]

        def w(seg):
            yield sim.timeout(1.0)
            seg.write(1)

        def r(seg):
            yield sim.timeout(1.0)
            seg.read()

        for seg in dbs:
            sim.process(w(seg))
            sim.process(r(seg))
        sim.run()
        assert len(sanitizer.races) == 2


class TestStoreCancel:
    def test_cancel_releases_pending_getter(self):
        """An abandoned getter must not swallow the next put (the
        recv_timeout leak fixed alongside the sanitizer)."""
        sim = Simulator()
        chan = Store(sim)
        got = []

        def loser():
            get = chan.get()
            timeout = sim.timeout(1.0)
            yield sim.any_of([get, timeout])
            if not get.triggered:
                chan.cancel(get)

        def late_producer():
            yield sim.timeout(2.0)
            chan.put("item")

        def winner():
            yield sim.timeout(3.0)
            item = yield chan.get()
            got.append(item)

        sim.process(loser())
        sim.process(late_producer())
        sim.process(winner())
        sim.run()
        assert got == ["item"]

    def test_cancel_unknown_getter_is_noop(self):
        sim = Simulator()
        chan = Store(sim)
        chan.cancel(sim.event())  # never registered: silently ignored


class TestRendering:
    def test_race_report_renders_like_a_diagnostic(self):
        sim, sanitizer, _, db = _world()

        def w():
            yield sim.timeout(1.0)
            db.write(1)

        def r():
            yield sim.timeout(1.0)
            db.read()

        sim.process(w(), name="w")
        sim.process(r(), name="r")
        sim.run()
        (race,) = sanitizer.races
        text = race.render("scenario.py")
        assert text.startswith("scenario.py:")
        assert "error REPRO300" in text
        assert "t=1.000000" in text


def test_shared_names_and_returns_the_segment():
    sim = Simulator()
    seg = SharedMemory(sim).segment(1)
    wrapped = shared(seg, name="x")
    assert wrapped is seg
    assert seg.hb_name == "x"
