"""Unit tests for Store, Resource and SharedMemory."""

from __future__ import annotations

import pytest

from repro.sim import Resource, SharedMemory, SimulationError, Store
from tests.conftest import run_process


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")

        def p():
            return (yield store.get())

        assert run_process(sim, p()) == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def producer():
            yield sim.timeout(4)
            store.put("late")

        def consumer():
            item = yield store.get()
            return (item, sim.now)

        sim.process(producer())
        assert run_process(sim, consumer()) == ("late", 4.0)

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)

        def p():
            out = []
            for _ in range(5):
                out.append((yield store.get()))
            return out

        assert run_process(sim, p()) == [0, 1, 2, 3, 4]

    def test_bounded_drop_when_full(self, sim):
        store = Store(sim, capacity=2, drop_when_full=True)
        assert store.put(1)
        assert store.put(2)
        assert not store.put(3)
        assert store.dropped == 1
        assert len(store) == 2

    def test_bounded_raise_when_full(self, sim):
        store = Store(sim, capacity=1)
        store.put(1)
        with pytest.raises(SimulationError):
            store.put(2)

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put("a")
        assert store.try_get() == "a"

    def test_put_skips_triggered_getter(self, sim):
        """A getter that lost a race (already triggered) must not swallow
        the item."""
        store = Store(sim)

        def p():
            get = store.get()
            to = sim.timeout(1.0)
            fired = yield sim.any_of([get, to])
            assert get in fired  # store.put below resolves it first
            return fired[get]

        store.put("now")
        assert run_process(sim, p()) == "now"


class TestResource:
    def test_mutual_exclusion(self, sim):
        lock = Resource(sim, capacity=1)
        trace = []

        def worker(tag, hold):
            yield lock.acquire()
            trace.append((tag, "in", sim.now))
            yield sim.timeout(hold)
            trace.append((tag, "out", sim.now))
            lock.release()

        sim.process(worker("a", 2))
        sim.process(worker("b", 1))
        sim.run()
        assert trace == [
            ("a", "in", 0.0), ("a", "out", 2.0),
            ("b", "in", 2.0), ("b", "out", 3.0),
        ]

    def test_capacity_two_allows_two(self, sim):
        res = Resource(sim, capacity=2)

        def p():
            yield res.acquire()
            yield res.acquire()
            return res.available

        assert run_process(sim, p()) == 0

    def test_release_without_acquire(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_fifo_handoff(self, sim):
        lock = Resource(sim)
        order = []

        def holder():
            yield lock.acquire()
            yield sim.timeout(5)
            lock.release()

        def waiter(tag, arrive):
            yield sim.timeout(arrive)
            yield lock.acquire()
            order.append(tag)
            lock.release()

        sim.process(holder())
        sim.process(waiter("first", 1))
        sim.process(waiter("second", 2))
        sim.run()
        assert order == ["first", "second"]


class TestSharedMemory:
    def test_segment_created_on_demand(self, sim):
        shm = SharedMemory(sim)
        seg = shm.segment(1234)
        assert seg.key == 1234
        assert shm.segment(1234) is seg
        assert shm.keys() == [1234]

    def test_locked_write_read_roundtrip(self, sim):
        shm = SharedMemory(sim)

        def p():
            yield from shm.locked_write(4321, {"a": 1})
            value = yield from shm.locked_read(4321)
            return value

        assert run_process(sim, p()) == {"a": 1}

    def test_distinct_keys_are_independent(self, sim):
        shm = SharedMemory(sim)
        shm.segment(1234).write("monitor")
        shm.segment(4321).write("wizard")
        assert shm.segment(1234).read() == "monitor"
        assert shm.segment(4321).read() == "wizard"

    def test_write_counts(self, sim):
        shm = SharedMemory(sim)
        seg = shm.segment(1)
        seg.write(1)
        seg.write(2)
        seg.read()
        assert seg.writes == 2
        assert seg.reads == 1

    def test_writer_excludes_reader(self, sim):
        """A slow writer holding the semaphore delays the reader — the
        System V discipline of thesis §3.2.2."""
        shm = SharedMemory(sim)
        seg = shm.segment(1234)
        times = {}

        def writer():
            yield seg.lock.acquire()
            yield sim.timeout(3)  # long critical section
            seg.write("fresh")
            seg.lock.release()

        def reader():
            yield sim.timeout(1)  # arrives while writer holds the lock
            value = yield from shm.locked_read(1234)
            times["read_at"] = sim.now
            times["value"] = value

        sim.process(writer())
        sim.process(reader())
        sim.run()
        assert times == {"read_at": 3.0, "value": "fresh"}
