"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim import Interrupt, SimulationError
from tests.conftest import run_process


class TestTimeAdvancement:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        def p():
            yield sim.timeout(2.5)
            return sim.now

        assert run_process(sim, p()) == 2.5

    def test_run_until_extends_clock_past_last_event(self, sim):
        sim.process(iter_timeout(sim, 1.0))
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_in_past_rejected(self, sim):
        sim.process(iter_timeout(sim, 5.0))
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_events_fifo_order(self, sim):
        order = []

        def maker(tag):
            def p():
                order.append(tag)
                return
                yield  # pragma: no cover

            return p()

        for tag in range(5):
            sim.process(maker(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcessSemantics:
    def test_process_return_value(self, sim):
        def p():
            yield sim.timeout(1)
            return "done"

        assert run_process(sim, p()) == "done"

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.timeout(3)
            return 42

        def parent():
            value = yield sim.process(child())
            return (value, sim.now)

        assert run_process(sim, parent()) == (42, 3.0)

    def test_yielding_non_event_raises(self, sim):
        def p():
            yield 42

        sim.process(p())
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()

    def test_uncaught_exception_propagates_from_run(self, sim):
        def p():
            yield sim.timeout(1)
            raise ValueError("boom")

        sim.process(p())
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_waiter_can_catch_child_failure(self, sim):
        def child():
            yield sim.timeout(1)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return str(exc)

        assert run_process(sim, parent()) == "boom"

    def test_interrupt_delivers_cause(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                return (i.cause, sim.now)

        def killer(target):
            yield sim.timeout(7)
            target.interrupt("why")

        target = sim.process(sleeper())
        sim.process(killer(target))
        sim.run()
        assert target.value == ("why", 7.0)

    def test_interrupt_dead_process_is_noop(self, sim):
        def p():
            yield sim.timeout(1)

        proc = sim.process(p())
        sim.run()
        proc.interrupt("late")  # must not raise
        sim.run()

    def test_interrupted_process_does_not_wake_twice(self, sim):
        wakes = []

        def sleeper():
            try:
                yield sim.timeout(5)
                wakes.append("timeout")
            except Interrupt:
                wakes.append("interrupt")
            yield sim.timeout(100)

        target = sim.process(sleeper())

        def killer():
            yield sim.timeout(1)
            target.interrupt()

        sim.process(killer())
        sim.run(until=50)
        assert wakes == ["interrupt"]


class TestConditions:
    def test_any_of_returns_first(self, sim):
        def p():
            fast = sim.timeout(1, value="fast")
            slow = sim.timeout(5, value="slow")
            result = yield sim.any_of([fast, slow])
            return (fast in result, slow in result, sim.now)

        assert run_process(sim, p()) == (True, False, 1.0)

    def test_all_of_waits_for_all(self, sim):
        def p():
            a = sim.timeout(1, value="a")
            b = sim.timeout(5, value="b")
            result = yield sim.all_of([a, b])
            return (result[a], result[b], sim.now)

        assert run_process(sim, p()) == ("a", "b", 5.0)

    def test_any_of_empty_fires_immediately(self, sim):
        def p():
            result = yield sim.any_of([])
            return (result, sim.now)

        assert run_process(sim, p()) == ({}, 0.0)


class TestEvents:
    def test_double_succeed_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_value_before_decision_rejected(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_callback_after_processing_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed("v")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]

    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(3.0)
        assert sim.peek() == 3.0
        sim.run()
        assert sim.peek() == float("inf")


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


class TestConditionsUnderTieShuffle:
    """AnyOf/AllOf resolution is seed-stable under the schedule shuffle.

    Equal-delay events created back-to-back by one process inherit one
    tie key (causal tie-key inheritance), so shuffling equal-timestamp
    processing order must not change which member wins an ``any_of`` or
    the member order of an ``all_of`` result — across any shuffle seed.
    """

    @staticmethod
    def _any_of_run(tie_seed):
        from repro.sim import Simulator
        from repro.sim.rand import RandomStreams

        sim = Simulator()
        if tie_seed is not None:
            sim.enable_tie_shuffle(
                RandomStreams(tie_seed).stream("schedule-tiebreak"))
        outcome = {}

        def waiter():
            # three same-deadline timeouts: the tie is as hard as it gets
            events = [sim.timeout(1.0, value=f"t{i}") for i in range(3)]
            fired = yield sim.any_of(events)
            outcome["winners"] = sorted(fired.values())
            outcome["now"] = sim.now

        sim.process(waiter(), name="waiter")
        sim.run()
        return outcome

    @staticmethod
    def _all_of_run(tie_seed):
        from repro.sim import Simulator
        from repro.sim.rand import RandomStreams

        sim = Simulator()
        if tie_seed is not None:
            sim.enable_tie_shuffle(
                RandomStreams(tie_seed).stream("schedule-tiebreak"))
        outcome = {}

        def waiter():
            events = [sim.timeout(1.0, value=f"t{i}") for i in range(4)]
            values = yield sim.all_of(events)
            outcome["values"] = list(values.values())
            outcome["now"] = sim.now

        sim.process(waiter(), name="waiter")
        sim.run()
        return outcome

    def test_any_of_winner_stable_across_shuffle_seeds(self):
        fifo = self._any_of_run(None)
        results = [self._any_of_run(seed) for seed in (1, 2, 3)]
        for res in results:
            assert res == fifo

    def test_all_of_result_order_stable_across_shuffle_seeds(self):
        fifo = self._all_of_run(None)
        results = [self._all_of_run(seed) for seed in (1, 2, 3)]
        for res in results:
            assert res == fifo
        # all_of preserves creation order of its members in the result
        assert fifo["values"] == ["t0", "t1", "t2", "t3"]
