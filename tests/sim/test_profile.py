"""Unit tests for the deterministic event profiler."""

from __future__ import annotations

import json

from repro.sim import SimProfiler, Simulator
from repro.sim.profile import flame_tree, merge_attributions


def ping_pong_world(sim):
    """Two named processes exchanging timeouts, plus an anonymous one
    (attributed under its generator's default name, ``idler``)."""
    def ticker():
        for _ in range(3):
            yield sim.timeout(1.0)

    def sleeper():
        yield sim.timeout(5.0)

    def idler():
        yield sim.timeout(2.0)

    sim.process(ticker(), name="ticker")
    sim.process(sleeper(), name="sleeper")
    sim.process(idler())


class TestAttribution:
    def test_resumes_and_spans_per_process(self):
        sim = Simulator()
        profiler = sim.enable_profile()
        ping_pong_world(sim)
        sim.run()
        attr = profiler.attribution()
        # first resume at t=0 plus one per timeout
        assert attr["processes"]["ticker"]["resumes"] == 4
        assert attr["processes"]["sleeper"]["resumes"] == 2
        assert attr["processes"]["ticker"]["first_s"] == 0.0
        assert attr["processes"]["ticker"]["last_s"] == 3.0
        assert attr["processes"]["sleeper"]["last_s"] == 5.0
        assert attr["sim_time_s"] == 5.0

    def test_allocations_attributed_to_active_process(self):
        sim = Simulator()
        profiler = sim.enable_profile()
        ping_pong_world(sim)
        sim.run()
        attr = profiler.attribution()
        # ticker schedules 3 timeouts plus its own completion event;
        # build-time process creation is attributed to the kernel
        assert attr["processes"]["ticker"]["allocations"] == 4
        assert attr["processes"]["sleeper"]["allocations"] == 2
        assert attr["processes"]["<kernel>"]["allocations"] == 3
        assert attr["total_allocations"] == sum(
            row["allocations"] for row in attr["processes"].values())

    def test_event_type_counts_cover_every_event(self):
        sim = Simulator()
        profiler = sim.enable_profile()
        ping_pong_world(sim)
        sim.run()
        attr = profiler.attribution()
        assert attr["total_events"] == sum(attr["event_types"].values())
        assert attr["event_types"]["Timeout"] == 5

    def test_two_runs_are_byte_identical(self):
        outs = []
        for _ in range(2):
            sim = Simulator()
            profiler = sim.enable_profile()
            ping_pong_world(sim)
            sim.run()
            outs.append(json.dumps(profiler.attribution(), sort_keys=True))
        assert outs[0] == outs[1]

    def test_profiler_does_not_perturb_the_schedule(self):
        """Opt-in instrumentation must not change simulated behavior."""
        def run(profile):
            sim = Simulator()
            if profile:
                sim.enable_profile()
            order = []

            def proc(tag, delay):
                yield sim.timeout(delay)
                order.append((tag, sim.now))

            sim.process(proc("a", 2.0), name="a")
            sim.process(proc("b", 1.0), name="b")
            sim.run()
            return order

        assert run(False) == run(True)

    def test_custom_profiler_instance_is_returned(self):
        sim = Simulator()
        mine = SimProfiler()
        assert sim.enable_profile(mine) is mine


class TestMergeAndRender:
    def _attr(self):
        sim = Simulator()
        profiler = sim.enable_profile()
        ping_pong_world(sim)
        sim.run()
        return profiler.attribution()

    def test_merge_sums_counts_and_widens_spans(self):
        one = self._attr()
        merged = merge_attributions([one, one])
        assert merged["total_events"] == 2 * one["total_events"]
        assert (merged["processes"]["ticker"]["resumes"]
                == 2 * one["processes"]["ticker"]["resumes"])
        assert (merged["processes"]["ticker"]["first_s"]
                == one["processes"]["ticker"]["first_s"])

    def test_flame_tree_is_deterministic_and_ranked(self):
        attr = self._attr()
        tree1 = flame_tree(attr)
        tree2 = flame_tree(attr)
        assert tree1 == tree2
        lines = tree1.splitlines()
        assert lines[0].startswith("flame (resume share")
        # hottest group first: ticker (two instances) beats sleeper
        assert lines[1].split()[0] == "ticker"

    def test_flame_tree_groups_by_name_prefix(self):
        attr = {
            "processes": {
                "recv-listen": {"resumes": 3, "allocations": 0,
                                "first_s": 0.0, "last_s": 1.0},
                "recv-session": {"resumes": 1, "allocations": 0,
                                 "first_s": 0.0, "last_s": 1.0},
            },
            "event_types": {}, "total_events": 4,
            "total_allocations": 0, "sim_time_s": 1.0,
        }
        tree = flame_tree(attr)
        assert "recv " in tree.splitlines()[1]
        assert any(line.strip().startswith("recv-listen")
                   for line in tree.splitlines())
