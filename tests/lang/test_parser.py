"""Tests for the requirement-language parser (thesis Fig 4.2 grammar)."""

from __future__ import annotations

import pytest

from repro.lang import (
    Assign,
    BinOp,
    Call,
    Compare,
    Logic,
    Neg,
    Paren,
    ParseError,
    is_logical,
    parse,
)


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        (stmt,) = parse("1 + 2 * 3").statements
        assert isinstance(stmt, BinOp) and stmt.op == "+"
        assert isinstance(stmt.right, BinOp) and stmt.right.op == "*"

    def test_comparison_over_arithmetic(self):
        (stmt,) = parse("a + 1 < b * 2").statements
        assert isinstance(stmt, Compare) and stmt.op == "<"

    def test_and_over_comparison(self):
        (stmt,) = parse("a < 1 && b > 2").statements
        assert isinstance(stmt, Logic) and stmt.op == "&&"

    def test_or_binds_loosest(self):
        (stmt,) = parse("a && b || c").statements
        assert isinstance(stmt, Logic) and stmt.op == "||"
        assert isinstance(stmt.left, Logic) and stmt.left.op == "&&"

    def test_power_right_associative(self):
        (stmt,) = parse("2 ^ 3 ^ 2").statements
        assert stmt.op == "^"
        assert isinstance(stmt.right, BinOp) and stmt.right.op == "^"

    def test_unary_minus(self):
        (stmt,) = parse("-a * 2").statements
        assert isinstance(stmt, BinOp) and isinstance(stmt.left, Neg)

    def test_parens_override(self):
        (stmt,) = parse("(1 + 2) * 3").statements
        assert stmt.op == "*"
        assert isinstance(stmt.left, Paren)


class TestStatements:
    def test_one_statement_per_line(self):
        prog = parse("a > 1\nb < 2\nc == 3")
        assert len(prog.statements) == 3

    def test_blank_lines_and_comments_skipped(self):
        prog = parse("\n\na > 1\n# note\n\nb < 2\n")
        assert len(prog.statements) == 2

    def test_assignment_statement(self):
        (stmt,) = parse("x = 3 + 4").statements
        assert isinstance(stmt, Assign) and stmt.name == "x"

    def test_chained_assignment(self):
        (stmt,) = parse("a = b = 3").statements
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.value, Assign)

    def test_assignment_inside_parens_in_logic_chain(self):
        # thesis Table 5.5 style
        (stmt,) = parse("(user_denied_host1 = telesto) && (a > 1)").statements
        assert isinstance(stmt, Logic)

    def test_call_single_arg(self):
        (stmt,) = parse("log10(100)").statements
        assert isinstance(stmt, Call) and stmt.func == "log10"

    def test_call_multi_arg(self):
        (stmt,) = parse("pow(2, 10)").statements
        assert len(stmt.args) == 2


class TestIsLogical:
    @pytest.mark.parametrize("src,expected", [
        ("a > 1", True),
        ("a && b", True),
        ("(a > 1)", True),          # parens transparent
        ("((a == b))", True),
        ("a + b", False),
        ("x = a > 1", False),       # assignment is non-logical
        ("(a+b)<=b", True),         # thesis' own example
        ("a+(b<c)", False),         # thesis' own counter-example
        ("sin(x)", False),
        ("3", False),
    ])
    def test_classification(self, src, expected):
        (stmt,) = parse(src).statements
        assert is_logical(stmt) is expected


class TestErrors:
    def test_incomplete_expression(self):
        with pytest.raises(ParseError):
            parse("a > ")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("(a > 1")

    def test_assign_to_non_variable(self):
        with pytest.raises(ParseError):
            parse("3 = a")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("a > 1 b")

    def test_recovery_mode_skips_bad_lines(self):
        prog = parse("a > 1\n* 3 +\nb < 2", recover=True)
        assert len(prog.statements) == 2
        assert len(prog.errors) == 1

    def test_recovery_collects_errors(self):
        prog = parse("a > 1\na > > 2\nb < 2", recover=True)
        assert len(prog.statements) == 2
        assert len(prog.errors) == 1


class TestThesisRequirements:
    """Each requirement string from Chapter 5 must parse."""

    @pytest.mark.parametrize("src", [
        "(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && (host_memory_free > 5)",
        "((host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)) && "
        "(host_cpu_free > 0.9) && (host_memory_free > 5)",
        "(host_cpu_free > 0.9) && (host_memory_free > 5) && "
        "(user_denied_host1 = telesto) && (user_denied_host2 = mimas) && "
        "(user_denied_host3 = phoebe) && (user_denied_host4 = calypso) && "
        "(user_denied_host5 = titan-x)",
        "(host_cpu_free > 0.9) && (host_memory_free > 5) && (host_system_load1 < 0.5)",
        "monitor_network_bw > 6",
        "monitor_network_bw > 7",
        "monitor_network_bw > 5",
    ])
    def test_parses(self, src):
        prog = parse(src)
        assert len(prog.statements) == 1
