"""Property-based tests (hypothesis) for the meta-language pipeline."""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro.lang import (
    LexError,
    ParseError,
    TokenKind,
    evaluate,
    parse,
    tokenize,
)
from repro.lang.evaluator import Environment, _eval

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

numbers = st.floats(min_value=0.0, max_value=1e6,
                    allow_nan=False, allow_infinity=False).map(lambda x: round(x, 3))

identifiers = st.from_regex(r"[a-zA-Z][a-zA-Z_0-9]{0,10}", fullmatch=True)


@st.composite
def arith_exprs(draw, depth=0):
    """Random well-formed arithmetic expressions over + - * with literals."""
    if depth > 3 or draw(st.booleans()):
        return f"{draw(numbers)}"
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arith_exprs(depth + 1))
    right = draw(arith_exprs(depth + 1))
    return f"({left} {op} {right})"


# ---------------------------------------------------------------------------
# lexer properties
# ---------------------------------------------------------------------------

class TestLexerProperties:
    @given(numbers)
    def test_every_number_round_trips(self, x):
        toks = list(tokenize(f"{x}"))
        assert toks[0].kind == TokenKind.NUMBER
        assert float(toks[0].text) == x

    @given(identifiers)
    def test_every_identifier_lexes_as_single_token(self, name):
        toks = [t for t in tokenize(name) if t.kind != TokenKind.EOF]
        assert len(toks) == 1
        assert toks[0].kind == TokenKind.IDENT
        assert toks[0].text == name

    @given(st.lists(identifiers, min_size=1, max_size=5))
    def test_token_count_independent_of_spacing(self, names):
        tight = " ".join(names)
        loose = "   \t ".join(names)
        count = lambda s: sum(1 for t in tokenize(s) if t.kind != TokenKind.EOF)
        assert count(tight) == count(loose)

    @given(st.text(alphabet="abcdefgh_0123456789 .+-*/()<>=&|\t\n", max_size=80))
    def test_lexer_total_over_its_alphabet(self, text):
        """Over the language's own alphabet the lexer either succeeds or
        raises LexError — never anything else."""
        try:
            list(tokenize(text))
        except LexError:
            pass

    @given(st.integers(0, 255), st.integers(0, 255),
           st.integers(0, 255), st.integers(0, 255))
    def test_dotted_quads_always_netaddr(self, a, b, c, d):
        toks = list(tokenize(f"{a}.{b}.{c}.{d}"))
        assert toks[0].kind == TokenKind.NETADDR


# ---------------------------------------------------------------------------
# parser/evaluator properties
# ---------------------------------------------------------------------------

class TestEvaluationProperties:
    @given(arith_exprs())
    @settings(max_examples=60)
    def test_arithmetic_matches_python(self, expr):
        (stmt,) = parse(expr).statements
        got = _eval(stmt, Environment())
        expected = eval(expr)  # same grammar subset as Python's
        assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-9)

    @given(numbers, numbers)
    def test_comparison_trichotomy(self, a, b):
        lt = evaluate(parse("a < b"), {"a": a, "b": b}).qualified
        gt = evaluate(parse("a > b"), {"a": a, "b": b}).qualified
        eq = evaluate(parse("a == b"), {"a": a, "b": b}).qualified
        assert [lt, gt, eq].count(True) == 1

    @given(numbers, numbers)
    def test_le_is_lt_or_eq(self, a, b):
        """The thesis' yacc literally defines <= as (< || ==)."""
        le = evaluate(parse("a <= b"), {"a": a, "b": b}).qualified
        lt_or_eq = evaluate(parse("(a < b) || (a == b)"), {"a": a, "b": b}).qualified
        assert le == lt_or_eq

    @given(st.lists(st.tuples(identifiers, numbers), min_size=1,
                    max_size=4, unique_by=lambda t: t[0]))
    def test_conjunction_of_tautologies_qualifies(self, bindings):
        params = dict(bindings)
        src = "\n".join(f"{k} == {k}" for k in params)
        assert evaluate(parse(src), params).qualified

    @given(st.lists(st.tuples(identifiers, numbers), min_size=2,
                    max_size=4, unique_by=lambda t: t[0]))
    def test_single_false_line_poisons_qualification(self, bindings):
        params = dict(bindings)
        keys = list(params)
        lines = [f"{k} == {k}" for k in keys[:-1]] + [f"{keys[-1]} != {keys[-1]}"]
        assert not evaluate(parse("\n".join(lines)), params).qualified

    @given(arith_exprs())
    @settings(max_examples=40)
    def test_statement_order_of_independent_lines_irrelevant(self, expr):
        a = f"{expr} >= 0\n1 > 0"
        b = f"1 > 0\n{expr} >= 0"
        assert evaluate(parse(a), {}).qualified == evaluate(parse(b), {}).qualified

    @given(identifiers)
    def test_undefined_identifier_never_qualifies_logical(self, name):
        from repro.lang import CONSTANTS

        assume(name not in CONSTANTS)  # PI, E, ... are always defined
        result = evaluate(parse(f"{name} > 0"), {})
        assert not result.qualified

    @given(numbers)
    def test_assignment_exposes_value(self, x):
        result = evaluate(parse(f"t = {x}\nt == {x}"), {})
        assert result.qualified


class TestParserTotality:
    @given(st.text(alphabet="ab01 .+*/()<>=&|\n", max_size=60))
    def test_parser_raises_only_language_errors(self, text):
        try:
            parse(text)
        except (LexError, ParseError):
            pass

    @given(st.text(alphabet="ab01 .+*/()<>=&|\n", max_size=60))
    def test_recovery_mode_never_raises_parse_errors(self, text):
        try:
            parse(text, recover=True)
        except LexError:
            pass
