"""Golden-file tests: exact diagnostic codes, spans and rendering.

Each ``golden/<name>.req`` has a ``golden/<name>.expected`` holding the
exact repro-lint output (diagnostics with line/col spans, the NAK
summary for unsatisfiable files, the clean summary otherwise).  The
clean file holds the thesis' worked examples: the Table 5.3–5.6 matmul
requirements, the §3.6.2 bytes example, the massd monitor constraints
and the §6 string-attribute form.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.__main__ import lint_main
from repro.lang import analyze

GOLDEN = Path(__file__).parent / "golden"
CASES = sorted(p.stem for p in GOLDEN.glob("*.req"))


def run_lint(path: Path, capsys) -> tuple[int, str]:
    code = lint_main([str(path)])
    out = capsys.readouterr().out
    # the expected files are recorded with repo-relative paths
    rel = path.relative_to(Path(__file__).parent.parent.parent)
    return code, out.replace(str(path), str(rel))


@pytest.mark.parametrize("name", CASES)
def test_golden_output_is_exact(name, capsys):
    req = GOLDEN / f"{name}.req"
    expected = (GOLDEN / f"{name}.expected").read_text()
    _, out = run_lint(req, capsys)
    assert out == expected


def test_clean_worked_examples_exit_zero(capsys):
    code, _ = run_lint(GOLDEN / "clean_worked_examples.req", capsys)
    assert code == 0


@pytest.mark.parametrize(
    "name", ["diagnostics_semantic", "diagnostics_satisfiability"])
def test_bad_files_exit_nonzero(name, capsys):
    code, _ = run_lint(GOLDEN / f"{name}.req", capsys)
    assert code == 1


def test_worked_examples_are_satisfiable():
    result = analyze((GOLDEN / "clean_worked_examples.req").read_text())
    assert result.diagnostics == []
    assert not result.unsatisfiable


def test_expected_files_pin_every_advertised_code():
    """The two bad golden files jointly cover the full REQxxx table
    minus the codes that need non-file context (none today)."""
    text = "\n".join((GOLDEN / f"{n}.expected").read_text()
                     for n in ("diagnostics_semantic",
                               "diagnostics_satisfiability"))
    for code in ("REQ001", "REQ002", "REQ003", "REQ004", "REQ005",
                 "REQ006", "REQ007", "REQ008", "REQ101", "REQ102",
                 "REQ201", "REQ202", "REQ203", "REQ204"):
        assert code in text, f"{code} not exercised by golden files"
