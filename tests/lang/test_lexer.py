"""Tests for the requirement-language lexer (thesis Fig 4.1 rules)."""

from __future__ import annotations

import pytest

from repro.lang import LexError, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text) if t.kind != TokenKind.EOF]


def texts(text):
    return [t.text for t in tokenize(text) if t.kind != TokenKind.EOF]


class TestBasicTokens:
    def test_integer_and_decimal_are_numbers(self):
        assert kinds("42 3.14") == ["NUMBER", "NUMBER"]

    def test_identifier(self):
        assert kinds("host_cpu_free abc_123") == ["IDENT", "IDENT"]

    def test_identifier_cannot_start_with_digit(self):
        # "9abc" lexes as NUMBER then IDENT, per the thesis' regexes
        assert kinds("9abc") == ["NUMBER", "IDENT"]

    def test_dotted_quad_is_netaddr(self):
        assert kinds("137.132.90.182") == ["NETADDR"]

    def test_domain_name_is_netaddr(self):
        assert kinds("sagit.ddns.comp.nus.edu.sg") == ["NETADDR"]

    def test_bare_hostname_is_ident(self):
        assert kinds("telesto") == ["IDENT"]

    def test_all_operators(self):
        ops = "&& || > >= < <= == != + - * / ^ ( ) ="
        assert kinds(ops) == ["OP"] * 16
        assert texts(ops) == ops.split()

    def test_multichar_ops_win_over_prefixes(self):
        assert texts(">=") == [">="]
        assert texts("> =") == [">", "="]


class TestCommentsAndLayout:
    def test_comments_ignored(self):
        assert kinds("a # this is a comment\nb") == ["IDENT", "NEWLINE", "IDENT"]

    def test_comment_with_garbage_ignored(self):
        # straight from the thesis' sample requirement
        assert kinds("#ldjfaldjfalsjff #akldjfaldfj") == []

    def test_whitespace_ignored(self):
        assert kinds("a \t  b") == ["IDENT", "IDENT"]

    def test_newline_token_emitted(self):
        assert kinds("a\nb") == ["IDENT", "NEWLINE", "IDENT"]

    def test_line_numbers_advance(self):
        toks = list(tokenize("a\nb\nc"))
        lines = [t.line for t in toks if t.kind == TokenKind.IDENT]
        assert lines == [1, 2, 3]

    def test_column_positions(self):
        toks = list(tokenize("ab cd"))
        assert toks[0].col == 1
        assert toks[1].col == 4


class TestErrors:
    def test_unknown_character_raises_with_position(self):
        with pytest.raises(LexError) as exc:
            list(tokenize("a\nb @ c"))
        assert exc.value.line == 2

    def test_empty_input_yields_only_eof(self):
        toks = list(tokenize(""))
        assert len(toks) == 1
        assert toks[0].kind == TokenKind.EOF


class TestThesisSample:
    def test_full_sample_requirement_lexes(self):
        sample = """host_system_load1 < 1
host_memory_used <= 250*1024*1024
host_cpu_free >= 0.9
#ldjfaldjfalsjff #akldjfaldfj
#some comments
host_network_tbytesps < 1024*1024  # for network IO
# comments
user_denied_host1 = 137.132.90.182
user_preferred_host1 = sagit.ddns.comp.nus.edu.sg
#
"""
        toks = list(tokenize(sample))
        assert toks[-1].kind == TokenKind.EOF
        assert sum(1 for t in toks if t.kind == TokenKind.NETADDR) == 2
