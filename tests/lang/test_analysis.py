"""Tests for the static-analysis pipeline (repro.lang.analysis)."""

from __future__ import annotations

import random

from repro.lang import (
    CompileCache,
    Num,
    analyze,
    compile_requirement,
    evaluate,
    parse,
)
from repro.lang.analysis import FALSE, TRUE, UNKNOWN


def codes(result):
    return [d.code for d in result.diagnostics]


class TestSemanticDiagnostics:
    def test_clean_requirement_has_no_diagnostics(self):
        r = analyze("host_cpu_free > 0.9\nhost_memory_free > 5")
        assert r.diagnostics == []
        assert r.ok

    def test_misspelled_variable_did_you_mean(self):
        r = analyze("host_cpu_fre > 0.9")
        assert codes(r) == ["REQ002"]
        assert "host_cpu_free" in r.diagnostics[0].message
        assert r.diagnostics[0].is_error
        assert (r.diagnostics[0].line, r.diagnostics[0].col) == (1, 1)

    def test_plain_unknown_variable_is_warning(self):
        r = analyze("a > 0")
        assert codes(r) == ["REQ001"]
        assert not r.diagnostics[0].is_error
        assert r.ok  # warnings do not fail the analysis

    def test_unknown_function_with_suggestion(self):
        r = analyze("sqr(host_cpu_free) > 0.5")
        assert "REQ003" in codes(r)
        diag = next(d for d in r.diagnostics if d.code == "REQ003")
        assert "sqrt" in diag.message

    def test_builtin_arity_error(self):
        r = analyze("sin(1, 2) > 0")
        assert "REQ004" in codes(r)

    def test_assignment_to_readonly_predefined(self):
        for name in ("host_cpu_free", "monitor_network_bw",
                     "host_status_age", "PI"):
            r = analyze(f"{name} = 3")
            assert "REQ005" in codes(r), name

    def test_user_side_slots_are_assignable(self):
        r = analyze("user_denied_host1 = telesto\nuser_preferred_host5 = 1.2.3.4")
        assert r.diagnostics == []

    def test_arithmetic_on_address_literal(self):
        r = analyze("1.2.3.4 + 1 > 2")
        assert "REQ006" in codes(r)

    def test_ordering_on_address_literal(self):
        r = analyze("monitor_network_bw > 1.2.3.4")
        assert "REQ006" in codes(r)
        assert r.unsatisfiable  # faults at runtime -> logical false

    def test_statement_without_effect(self):
        r = analyze("host_cpu_free + 1")
        assert codes(r) == ["REQ007"]

    def test_constant_fault_division_by_zero(self):
        r = analyze("1 / 0 > 0")
        assert "REQ008" in codes(r)
        assert r.unsatisfiable

    def test_string_attribute_equality_is_clean(self):
        # §6 extension: bare identifiers read as string literals
        r = analyze("host_machine_type == i386")
        assert r.diagnostics == []

    def test_hostname_idiom_hyphen_is_clean(self):
        r = analyze("user_denied_host5 = titan-x")
        assert r.diagnostics == []

    def test_misspelling_caught_even_in_string_equality(self):
        r = analyze("host_cpu_fre == i386")
        assert "REQ002" in codes(r)


class TestSatisfiability:
    def test_fraction_range_upper(self):
        r = analyze("host_cpu_free > 2")
        assert codes(r) == ["REQ101"]
        assert r.unsatisfiable
        assert r.statement_truths == [(1, FALSE)]

    def test_fraction_range_negative(self):
        r = analyze("host_cpu_idle < -0.5")
        assert r.unsatisfiable

    def test_nonnegative_rate(self):
        r = analyze("host_network_rbytesps < -1")
        assert r.unsatisfiable

    def test_satisfiable_is_not_flagged(self):
        r = analyze("host_cpu_free > 0.9")
        assert r.diagnostics == []
        assert not r.unsatisfiable
        assert r.statement_truths == [(1, UNKNOWN)]

    def test_always_true_warns(self):
        r = analyze("host_cpu_free >= 0")
        assert codes(r) == ["REQ201"]
        assert not r.unsatisfiable
        assert r.statement_truths == [(1, TRUE)]

    def test_dead_and_branch(self):
        r = analyze("(host_cpu_free > 2) && (host_memory_free > 5)")
        assert "REQ102" in codes(r)
        assert r.unsatisfiable

    def test_redundant_and_branch(self):
        r = analyze("(host_cpu_free >= 0) && (host_memory_free > 5)")
        assert "REQ203" in codes(r)
        assert not r.unsatisfiable

    def test_dead_or_branch_is_warning_only(self):
        r = analyze("(host_cpu_free > 0.9) || (monitor_network_delay < -1)")
        assert codes(r) == ["REQ202"]
        assert not r.unsatisfiable

    def test_or_with_one_live_branch_is_satisfiable(self):
        r = analyze("(host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)")
        assert r.diagnostics == []

    def test_interval_through_arithmetic(self):
        # host_cpu_free in [0,1] so 10*free + 5 in [5,15]: > 20 impossible
        r = analyze("10 * host_cpu_free + 5 > 20")
        assert r.unsatisfiable

    def test_interval_through_temp_variables(self):
        r = analyze("x = host_cpu_free\nx > 3")
        assert r.unsatisfiable

    def test_constant_temp_propagates(self):
        r = analyze("threshold = 2\nhost_cpu_free > threshold")
        assert r.unsatisfiable

    def test_mb_vs_bytes_unit_warning(self):
        r = analyze("host_memory_free > 5*1024*1024")
        assert "REQ204" in codes(r)

    def test_mb_comparison_in_mb_is_clean(self):
        r = analyze("host_memory_free > 5")
        assert r.diagnostics == []

    def test_unsatisfiability_spans_multiple_statements(self):
        r = analyze("host_cpu_free > 0.5\nhost_status_age < -1")
        assert r.unsatisfiable
        assert r.statement_truths == [(1, UNKNOWN), (2, FALSE)]


class TestConstantFolding:
    def test_constant_subtree_folds_to_literal(self):
        r = analyze("host_memory_used <= 250*1024*1024")
        cmp_node = r.folded.statements[0]
        assert isinstance(cmp_node.right, Num)
        assert cmp_node.right.value == 250 * 1024 * 1024

    def test_named_constants_fold(self):
        r = analyze("host_cpu_free < PI / 4")
        assert isinstance(r.folded.statements[0].right, Num)

    def test_folded_program_evaluates_identically(self):
        source = (
            "host_cpu_free > 0.25\n"
            "host_memory_free > 2 + 3\n"
            "x = 2 ^ 3\n"
            "host_cpu_bogomips > x * 100\n"
            "user_denied_host1 = telesto\n"
            "(host_system_load1 < 0.5) || (host_cpu_idle > 0.9)\n"
        )
        original = parse(source)
        folded = analyze(source).folded
        rng = random.Random(42)
        for _ in range(50):
            params = {
                "host_cpu_free": rng.random(),
                "host_cpu_idle": rng.random(),
                "host_memory_free": rng.uniform(0, 10),
                "host_cpu_bogomips": rng.uniform(0, 5000),
                "host_system_load1": rng.uniform(0, 2),
            }
            a = evaluate(original, params)
            b = evaluate(folded, params)
            assert a.qualified == b.qualified
            assert a.logical_results == b.logical_results
            assert a.env.denied_hosts() == b.env.denied_hosts()

    def test_folding_preserves_logical_classification(self):
        # a folded always-true comparison must stay a Compare node: the
        # qualify-iff-every-logical-statement-true rule depends on it
        r = analyze("(1 < 2) && (host_cpu_free > 0.1)")
        from repro.lang import Logic, is_logical
        assert isinstance(r.folded.statements[0], Logic)
        assert is_logical(r.folded.statements[0])


class TestCompileCache:
    def test_hit_and_miss_counting(self):
        cache = CompileCache(maxsize=4)
        cache.get_or_compile("host_cpu_free > 0.9")
        cache.get_or_compile("host_cpu_free > 0.9")
        cache.get_or_compile("host_memory_free > 5")
        assert cache.hits == 1
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = CompileCache(maxsize=2)
        cache.get_or_compile("a > 1")
        cache.get_or_compile("b > 1")
        cache.get_or_compile("a > 1")   # refresh a
        cache.get_or_compile("c > 1")   # evicts b
        assert len(cache) == 2
        cache.get_or_compile("b > 1")   # miss again
        assert cache.misses == 4

    def test_compiled_entry_carries_verdict(self):
        entry = compile_requirement("host_cpu_free > 2")
        assert entry.unsatisfiable
        assert any(d.code == "REQ101" for d in entry.diagnostics)

    def test_parse_failure_is_flagged_not_raised(self):
        entry = compile_requirement("@@@ ???")
        assert entry.parse_failed
        assert not entry.unsatisfiable

    def test_recovered_lines_still_analyze(self):
        entry = compile_requirement("host_cpu_free > ) (\nhost_cpu_free > 2")
        assert not entry.parse_failed
        assert entry.unsatisfiable


class TestEvaluatorSpans:
    """Satellite: EvalErrors must carry the failing node's line AND col."""

    def test_division_by_zero_span(self):
        r = evaluate(parse("host_cpu_free / (1 - 1) > 0.5"),
                     {"host_cpu_free": 0.9})
        assert "line 1" in r.errors[0]
        assert "col" in r.errors[0]

    def test_builtin_domain_error_span(self):
        r = evaluate(parse("sqrt(0 - host_cpu_free) > 0"),
                     {"host_cpu_free": 4.0})
        assert "line 1, col 1" in r.errors[0]

    def test_second_line_error_points_at_line_two(self):
        r = evaluate(parse("host_cpu_free > 0.1\n1 / (1 - 1) > 0"),
                     {"host_cpu_free": 0.9})
        assert "line 2" in r.errors[0]

    def test_string_arithmetic_points_at_operand(self):
        r = evaluate(parse("host_cpu_free + 1.2.3.4 > 1"),
                     {"host_cpu_free": 0.9})
        # the address literal starts at column 17
        assert "col 17" in r.errors[0]
