"""Every registry variable parses, analyzes clean, and evaluates.

Thesis §3.6.2: 22 server-side + 10 user-side variables.  This suite
pins the full registry: each name must round-trip through the parser,
produce zero diagnostics from the static analyzer, and evaluate against
a synthetic status record — and a misspelling of each must produce a
REQ002 did-you-mean diagnostic pointing back at the real name.
"""

from __future__ import annotations

import pytest

from repro.lang import analyze, evaluate, parse
from repro.lang.analysis import VAR_INTERVALS
from repro.lang.variables import (
    ALL_PREDEFINED,
    DENIED_VARS,
    DERIVED_VARS,
    MONITOR_VARS,
    PREFERRED_VARS,
    SERVER_SIDE_VARS,
    USER_SIDE_VARS,
)

NUMERIC_VARS = SERVER_SIDE_VARS + MONITOR_VARS + DERIVED_VARS

#: a value inside every variable's known interval
SYNTHETIC_RECORD = {name: 0.9 for name in NUMERIC_VARS}


def test_registry_counts_match_thesis():
    assert len(SERVER_SIDE_VARS) == 22
    assert len(USER_SIDE_VARS) == 10
    assert len(ALL_PREDEFINED) == 22 + 10 + len(MONITOR_VARS) + len(DERIVED_VARS)


def test_every_predefined_var_has_an_interval():
    for name in ALL_PREDEFINED:
        if name in USER_SIDE_VARS:
            continue  # string-valued slots have no numeric range
        assert name in VAR_INTERVALS, name
        lo, hi = VAR_INTERVALS[name]
        assert lo <= hi


@pytest.mark.parametrize("name", NUMERIC_VARS)
def test_numeric_var_parses_analyzes_evaluates(name):
    source = f"{name} > 0.5"
    parse(source)  # must not raise
    result = analyze(source)
    assert result.diagnostics == [], result.diagnostics
    ev = evaluate(result.folded, SYNTHETIC_RECORD)
    assert ev.qualified  # 0.9 > 0.5 for every variable
    assert ev.errors == []


@pytest.mark.parametrize("name", USER_SIDE_VARS)
def test_user_side_var_accepts_hostname_assignment(name):
    source = f"{name} = telesto"
    result = analyze(source)
    assert result.diagnostics == [], result.diagnostics
    ev = evaluate(result.folded, {})
    assert ev.qualified  # assignments are not logical statements
    assert ev.errors == []


def test_denied_and_preferred_slots_round_trip():
    lines = [f"{n} = host{i}" for i, n in enumerate(DENIED_VARS)]
    lines += [f"{n} = 10.0.0.{i}" for i, n in enumerate(PREFERRED_VARS)]
    ev = evaluate(parse("\n".join(lines)), {})
    assert len(ev.env.denied_hosts()) == 5
    assert len(ev.env.preferred_hosts()) == 5


@pytest.mark.parametrize("name", sorted(ALL_PREDEFINED))
def test_misspelling_gets_did_you_mean(name):
    typo = name.replace("_", "", 1)  # drop first underscore: never valid
    assert typo not in ALL_PREDEFINED
    result = analyze(f"{typo} > 0.5")
    req002 = [d for d in result.diagnostics if d.code == "REQ002"]
    assert req002, f"no REQ002 for {typo}"
    assert name in req002[0].message
