"""Tests for requirement evaluation semantics (thesis §3.6.1 / Fig 4.2)."""

from __future__ import annotations

from repro.lang import evaluate, parse


def ev(src, params=None, presets=None):
    return evaluate(parse(src), params or {}, user_presets=presets)


class TestQualification:
    def test_all_logical_true_qualifies(self):
        assert ev("a > 1\nb < 5", {"a": 2, "b": 3}).qualified

    def test_one_false_disqualifies(self):
        assert not ev("a > 1\nb < 5", {"a": 2, "b": 9}).qualified

    def test_no_logical_statements_vacuously_qualifies(self):
        assert ev("x = 3\ny = x * 2").qualified

    def test_meaningless_tautology_qualifies_everything(self):
        # the thesis' own warning: "a meaningless statement like 100 > 0
        # will make any server a qualified candidate"
        assert ev("100 > 0").qualified

    def test_undefined_var_in_logical_statement_is_false(self):
        result = ev("no_such_var > 3")
        assert not result.qualified
        assert result.logical_results == [(1, False)]

    def test_uninitialised_temp_in_logical_statement_is_false(self):
        assert not ev("t > 3\n").qualified

    def test_temp_variable_assignment_then_use(self):
        src = "threshold = 0.5\nhost_cpu_free > threshold"
        assert ev(src, {"host_cpu_free": 0.9}).qualified
        assert not ev(src, {"host_cpu_free": 0.3}).qualified

    def test_non_logical_arithmetic_does_not_affect_outcome(self):
        assert ev("a + 1000", {"a": -5000}).qualified


class TestErrors:
    def test_division_by_zero_records_error_and_fails(self):
        result = ev("z = 0\n3 / z > 1")
        assert not result.qualified
        assert any("division by 0" in e for e in result.errors)

    def test_undefined_in_non_logical_records_error(self):
        result = ev("x = ghost + 1")
        assert result.errors
        assert result.qualified  # no logical statements

    def test_string_arithmetic_rejected(self):
        result = ev("10.0.0.1 + 3 > 1")
        assert not result.qualified
        assert result.errors

    def test_string_ordering_rejected(self):
        result = ev("10.0.0.1 < 10.0.0.2")
        assert not result.qualified
        assert result.errors

    def test_unknown_function_recorded(self):
        result = ev("frobnicate(3) > 1")
        assert not result.qualified
        assert any("frobnicate" in e for e in result.errors)


class TestValues:
    def test_math_functions(self):
        assert ev("log10(100) == 2").qualified
        assert ev("exp(0) == 1").qualified
        assert ev("sqrt(16) == 4").qualified
        assert ev("abs(0-7) == 7").qualified
        assert ev("pow(2, 10) == 1024").qualified

    def test_constants(self):
        assert ev("PI > 3.14 && PI < 3.15").qualified
        assert ev("E > 2.71 && E < 2.72").qualified

    def test_power_operator(self):
        assert ev("2 ^ 10 == 1024").qualified
        assert ev("2 ^ 3 ^ 2 == 512").qualified  # right associative

    def test_string_equality(self):
        assert ev("10.0.0.1 == 10.0.0.1").qualified
        assert ev("10.0.0.1 != 10.0.0.2").qualified

    def test_logical_values_are_zero_one(self):
        result = ev("t = (3 > 1)\nt == 1")
        assert result.qualified

    def test_no_short_circuit_for_side_effects(self):
        # RHS assignment must run even when the left side is false
        result = ev("(1 > 2) && (user_denied_host1 = badbox)")
        assert not result.qualified
        assert result.env.denied_hosts() == ["badbox"]


class TestUserSideParams:
    def test_denied_hosts_collected(self):
        result = ev("user_denied_host1 = 137.132.90.182\nuser_denied_host2 = mimas")
        assert result.env.denied_hosts() == ["137.132.90.182", "mimas"]

    def test_preferred_hosts_collected(self):
        result = ev("user_preferred_host1 = sagit.comp.nus.edu.sg")
        assert result.env.preferred_hosts() == ["sagit.comp.nus.edu.sg"]

    def test_hyphenated_hostname_reconstructed(self):
        # thesis Table 5.5: user_denied_host5 = titan-x
        result = ev("user_denied_host5 = titan-x")
        assert result.env.denied_hosts() == ["titan-x"]

    def test_numeric_rhs_stays_arithmetic(self):
        result = ev("user_denied_host1 = 5 - 3")
        assert result.env.user["user_denied_host1"] == 2.0

    def test_presets_visible_to_requirement(self):
        result = ev("user_preferred_host1 == alpha.lab.net",
                    presets={"user_preferred_host1": "alpha.lab.net"})
        assert result.qualified

    def test_thesis_blacklist_requirement(self):
        src = ("(host_cpu_free > 0.9) && (host_memory_free > 5) && "
               "(user_denied_host1 = telesto) && (user_denied_host2 = mimas) && "
               "(user_denied_host3 = phoebe) && (user_denied_host4 = calypso) && "
               "(user_denied_host5 = titan-x)")
        result = ev(src, {"host_cpu_free": 0.99, "host_memory_free": 100.0})
        assert result.qualified
        assert set(result.env.denied_hosts()) == {
            "telesto", "mimas", "phoebe", "calypso", "titan-x",
        }


class TestThesisSample:
    def test_full_sample_requirement(self):
        src = """host_system_load1 < 1
host_memory_used <= 250*1024*1024
host_cpu_free >= 0.9
#ldjfaldjfalsjff #akldjfaldfj
#some comments
host_network_tbytesps < 1024*1024  # for network IO
# comments
user_denied_host1 = 137.132.90.182
user_preferred_host1 = sagit.ddns.comp.nus.edu.sg
#
"""
        good = {
            "host_system_load1": 0.4,
            "host_memory_used": 100 * 1024 * 1024,
            "host_cpu_free": 0.95,
            "host_network_tbytesps": 2048.0,
        }
        result = ev(src, good)
        assert result.qualified
        assert result.env.denied_hosts() == ["137.132.90.182"]
        assert result.env.preferred_hosts() == ["sagit.ddns.comp.nus.edu.sg"]

        overloaded = dict(good, host_system_load1=2.5)
        assert not ev(src, overloaded).qualified
