"""Tests for the `python -m repro` command-line front end."""

from __future__ import annotations

import subprocess
import sys

from repro.__main__ import EXPERIMENTS, main


class TestCliInProcess:
    def test_list_enumerates_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["tab9.9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_registered_id_maps_to_a_paper_artifact(self):
        assert set(EXPERIMENTS) == {
            "fig3.3", "fig3.4", "fig3.5", "fig3.6", "tab3.3",
            "tab5.2", "fig5.2", "tab5.3", "tab5.4", "tab5.5", "tab5.6",
            "fig5.3", "tab5.7", "tab5.8", "tab5.9",
        }

    def test_runs_one_experiment(self, capsys):
        assert main(["fig5.2"]) == 0
        out = capsys.readouterr().out
        assert "Matrix Benchmarking Results" in out
        assert "dalmatian" in out


class TestCliSubprocess:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "tab5.3" in result.stdout


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        req = tmp_path / "good.req"
        req.write_text("host_cpu_free > 0.9\nhost_memory_free > 5\n")
        assert main(["lint", str(req)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_errors_exit_one_with_spans(self, tmp_path, capsys):
        req = tmp_path / "bad.req"
        req.write_text("host_cpu_free > 0.5\nhost_cpu_fre > 0.9\n")
        assert main(["lint", str(req)]) == 1
        out = capsys.readouterr().out
        assert f"{req}:2:1: error REQ002" in out
        assert "did you mean 'host_cpu_free'" in out

    def test_unsatisfiable_mentions_nak(self, tmp_path, capsys):
        req = tmp_path / "unsat.req"
        req.write_text("host_cpu_free > 2\n")
        assert main(["lint", str(req)]) == 1
        out = capsys.readouterr().out
        assert "REQ101" in out
        assert "NAK" in out

    def test_warnings_alone_exit_zero_unless_strict(self, tmp_path, capsys):
        req = tmp_path / "warn.req"
        req.write_text("a > 0\n")
        assert main(["lint", str(req)]) == 0
        capsys.readouterr()
        assert main(["lint", "--strict", str(req)]) == 1

    def test_missing_file_exits_two(self, capsys):
        assert main(["lint", "/no/such/file.req"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_stdin_dash(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "-"],
            input="host_cpu_free > 2\n",
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 1
        assert "<stdin>:1:" in result.stdout
        assert "REQ101" in result.stdout

    def test_parse_error_rendered_with_span(self, tmp_path, capsys):
        req = tmp_path / "broken.req"
        req.write_text("* 3 +\n")
        assert main(["lint", str(req)]) == 1
        assert "error PARSE" in capsys.readouterr().out
