"""Tests for the `python -m repro` command-line front end."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCliInProcess:
    def test_list_enumerates_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["tab9.9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_registered_id_maps_to_a_paper_artifact(self):
        assert set(EXPERIMENTS) == {
            "fig3.3", "fig3.4", "fig3.5", "fig3.6", "tab3.3",
            "tab5.2", "fig5.2", "tab5.3", "tab5.4", "tab5.5", "tab5.6",
            "fig5.3", "tab5.7", "tab5.8", "tab5.9",
        }

    def test_runs_one_experiment(self, capsys):
        assert main(["fig5.2"]) == 0
        out = capsys.readouterr().out
        assert "Matrix Benchmarking Results" in out
        assert "dalmatian" in out


class TestCliSubprocess:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "tab5.3" in result.stdout
