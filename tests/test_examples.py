"""Smoke tests: every example script must run to completion.

Each example carries its own assertions about the outcome, so "exit 0"
means the demonstrated behaviour actually held.  The slow ones are kept
fast here via subprocess timeouts sized generously above their normal
runtimes.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "requirement_language.py",
    "fault_tolerance.py",
    "quickstart.py",
]
SLOW = [
    "bandwidth_probing.py",
    "matrix_multiplication.py",
    "massive_download.py",
]


def run_example(name: str, timeout: float) -> None:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_example(name):
    run_example(name, timeout=120)


@pytest.mark.parametrize("name", SLOW)
def test_slow_example(name):
    run_example(name, timeout=420)
