"""Determinism guarantees: the whole stack is reproducible given a seed.

A simulator whose runs are not bit-for-bit reproducible cannot back a
benchmark harness — these tests pin that property at several levels.
"""

from __future__ import annotations

from repro.bench import rtt_vs_size
from repro.bench.experiments import _drive, massd_experiment, matmul_experiment
from repro.cluster import Cluster, Deployment
from repro.core import Config, estimate_bandwidth
from repro.sim import EventTrace, RandomStreams, Simulator, diff_traces


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_independent_by_name(self):
        s = RandomStreams(7)
        s.stream("noise").random()  # consuming one stream...
        fresh = RandomStreams(7)
        # ...does not perturb another
        assert s.stream("signal").random() == fresh.stream("signal").random()

    def test_different_seeds_differ(self):
        assert RandomStreams(1).stream("x").random() != \
            RandomStreams(2).stream("x").random()


class TestExperimentDeterminism:
    def test_rtt_series_reproducible(self):
        s1 = rtt_vs_size(sizes=range(100, 3001, 100), seed=5)
        s2 = rtt_vs_size(sizes=range(100, 3001, 100), seed=5)
        assert s1 == s2

    def test_rtt_series_seed_sensitive(self):
        s1 = rtt_vs_size(sizes=range(100, 3001, 100),
                         cross_utilisation=0.05, seed=5)
        s2 = rtt_vs_size(sizes=range(100, 3001, 100),
                         cross_utilisation=0.05, seed=6)
        assert s1 != s2  # cross traffic differs by seed

    def test_full_deployment_reproducible(self):
        def run():
            cluster = Cluster(seed=77)
            w = cluster.add_host("w")
            s1 = cluster.add_host("s1", bogomips=2000)
            s2 = cluster.add_host("s2", bogomips=4000)
            cluster.link(w, s1)
            cluster.link(w, s2)
            cluster.finalize()
            cfg = Config(probe_interval=0.5, transmit_interval=0.5)
            dep = Deployment(cluster, wizard_host=w, config=cfg)
            dep.add_group("g", monitor_host=w, servers=[s1, s2])
            dep.start()
            client = dep.client_for(w)
            out = {}

            def p():
                yield cluster.sim.timeout(3.0)
                reply = yield from client.request_servers(
                    "host_cpu_bogomips > 3000", 2)
                out["seq"] = reply.seq
                out["servers"] = reply.servers
                out["t"] = cluster.sim.now

            proc = cluster.sim.process(p())
            _drive(cluster, proc)
            return out

        assert run() == run()

    def test_schedule_sanitizer_kernel_level(self):
        """Equal-time roots are shuffled per seed, yet canonical traces and
        results match — the kernel-level statement of the invariant."""

        def run(tie_seed):
            sim = Simulator()
            if tie_seed is not None:
                sim.enable_tie_shuffle(
                    RandomStreams(tie_seed).stream("schedule-tiebreak")
                )
            trace = EventTrace()
            sim.enable_event_trace(trace)
            order = []

            def worker(i):
                yield sim.timeout(1.0)  # every worker: same deadline
                order.append(i)
                yield sim.timeout(0.5 * (i + 1))
                order.append(i)

            for i in range(6):
                sim.process(worker(i), name=f"w{i}")
            sim.run()
            return order, trace

        fifo_order, fifo_trace = run(None)
        order1, trace1 = run(1)
        order2, trace2 = run(2)
        # the shuffle really permutes equal-time processing order...
        assert fifo_order[:6] == [0, 1, 2, 3, 4, 5]
        assert order1[:6] != order2[:6] or order1[:6] != fifo_order[:6]
        # ...but the canonical trace is identical across seeds (and FIFO)
        assert trace1.canonical_lines() == trace2.canonical_lines()
        assert trace1.canonical_lines() == fifo_trace.canonical_lines()
        assert trace1.digest() == trace2.digest()
        assert not diff_traces(trace1.canonical_lines(), trace2.canonical_lines())

    def test_schedule_sanitizer_causal_order_preserved(self):
        """A burst scheduled back-to-back from one cause keeps program order
        under the shuffle (tie-key inheritance): no packet reordering."""

        def run(tie_seed):
            sim = Simulator()
            sim.enable_tie_shuffle(
                RandomStreams(tie_seed).stream("schedule-tiebreak")
            )
            arrivals = []

            def sender():
                yield sim.timeout(1.0)
                for i in range(5):  # five same-delay frames, back to back
                    ev = sim.event()
                    ev.add_callback(lambda _e, i=i: arrivals.append(i))
                    ev.succeed(delay=0.25)

            sim.process(sender())
            sim.run()
            return arrivals

        for seed in (1, 2, 3):
            assert run(seed) == [0, 1, 2, 3, 4]

    def test_schedule_sanitizer_matmul_dual_run(self):
        """Acceptance invariant: matmul 2v2 dual runs under different
        shuffle seeds are trace-identical and pick identical servers."""
        req = ("(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9)"
               " && (host_memory_free > 5)")

        def run(tie_seed):
            return matmul_experiment(
                n_servers=2, blk=120, requirement=req,
                random_servers=("lhost", "phoebe"), n=240,
                tie_break_seed=tie_seed, trace_events=True,
            )

        a, b = run(1), run(2)
        assert [arm.label for arm in a] == [arm.label for arm in b]
        for arm_a, arm_b in zip(a, b):
            assert arm_a.servers == arm_b.servers
            assert arm_a.event_trace and arm_b.event_trace
            assert diff_traces(arm_a.event_trace, arm_b.event_trace) == []
            assert arm_a.event_trace == arm_b.event_trace  # byte-identical

    def test_schedule_sanitizer_massd_dual_run(self):
        """Acceptance invariant: massd 1v1 dual runs under different
        shuffle seeds are trace-identical and pick identical servers."""

        def run(tie_seed):
            return massd_experiment(
                group1_mbps=6.72, group2_mbps=1.33,
                requirement="monitor_network_bw > 6",
                n_servers=1, random_sets=[("pandora-x",)], data_kb=2000,
                tie_break_seed=tie_seed, trace_events=True,
            )

        a, b = run(1), run(2)
        for arm_a, arm_b in zip(a, b):
            assert arm_a.servers == arm_b.servers
            assert arm_a.event_trace and arm_b.event_trace
            assert diff_traces(arm_a.event_trace, arm_b.event_trace) == []
            assert arm_a.event_trace == arm_b.event_trace

    def test_trace_untouched_when_sanitizer_off(self):
        cluster = Cluster(seed=3)
        assert cluster.event_trace is None
        assert cluster.sim._tie_rng is None

    def test_bandwidth_estimate_reproducible(self):
        def run():
            cluster = Cluster(seed=13)
            a = cluster.add_host("a")
            b = cluster.add_host("b")
            cluster.link(a, b)
            cluster.finalize()
            holder = {}

            def p():
                est = yield from estimate_bandwidth(a.stack, b.addr, samples=2)
                holder["v"] = est.samples_bps

            proc = cluster.sim.process(p())
            _drive(cluster, proc)
            return holder["v"]

        assert run() == run()
