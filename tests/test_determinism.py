"""Determinism guarantees: the whole stack is reproducible given a seed.

A simulator whose runs are not bit-for-bit reproducible cannot back a
benchmark harness — these tests pin that property at several levels.
"""

from __future__ import annotations

from repro.bench import rtt_vs_size
from repro.bench.experiments import _drive
from repro.cluster import Cluster, Deployment
from repro.core import Config, estimate_bandwidth
from repro.sim import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_independent_by_name(self):
        s = RandomStreams(7)
        s.stream("noise").random()  # consuming one stream...
        fresh = RandomStreams(7)
        # ...does not perturb another
        assert s.stream("signal").random() == fresh.stream("signal").random()

    def test_different_seeds_differ(self):
        assert RandomStreams(1).stream("x").random() != \
            RandomStreams(2).stream("x").random()


class TestExperimentDeterminism:
    def test_rtt_series_reproducible(self):
        s1 = rtt_vs_size(sizes=range(100, 3001, 100), seed=5)
        s2 = rtt_vs_size(sizes=range(100, 3001, 100), seed=5)
        assert s1 == s2

    def test_rtt_series_seed_sensitive(self):
        s1 = rtt_vs_size(sizes=range(100, 3001, 100),
                         cross_utilisation=0.05, seed=5)
        s2 = rtt_vs_size(sizes=range(100, 3001, 100),
                         cross_utilisation=0.05, seed=6)
        assert s1 != s2  # cross traffic differs by seed

    def test_full_deployment_reproducible(self):
        def run():
            cluster = Cluster(seed=77)
            w = cluster.add_host("w")
            s1 = cluster.add_host("s1", bogomips=2000)
            s2 = cluster.add_host("s2", bogomips=4000)
            cluster.link(w, s1)
            cluster.link(w, s2)
            cluster.finalize()
            cfg = Config(probe_interval=0.5, transmit_interval=0.5)
            dep = Deployment(cluster, wizard_host=w, config=cfg)
            dep.add_group("g", monitor_host=w, servers=[s1, s2])
            dep.start()
            client = dep.client_for(w)
            out = {}

            def p():
                yield cluster.sim.timeout(3.0)
                reply = yield from client.request_servers(
                    "host_cpu_bogomips > 3000", 2)
                out["seq"] = reply.seq
                out["servers"] = reply.servers
                out["t"] = cluster.sim.now

            proc = cluster.sim.process(p())
            _drive(cluster, proc)
            return out

        assert run() == run()

    def test_bandwidth_estimate_reproducible(self):
        def run():
            cluster = Cluster(seed=13)
            a = cluster.add_host("a")
            b = cluster.add_host("b")
            cluster.link(a, b)
            cluster.finalize()
            holder = {}

            def p():
                est = yield from estimate_bandwidth(a.stack, b.addr, samples=2)
                holder["v"] = est.samples_bps

            proc = cluster.sim.process(p())
            _drive(cluster, proc)
            return holder["v"]

        assert run() == run()
