"""Unit tests for the benchmark harness helpers (reporting + analysis)."""

from __future__ import annotations

import pytest

from repro.bench import ComparisonRow, format_comparison, format_table, series_to_text
from repro.bench.experiments import _slope, knee_slopes


class TestFormatTable:
    def test_aligns_columns(self):
        out = format_table(["a", "bee"], [("x", 1), ("longer", 22)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        header_cols = lines[0].split()
        assert header_cols == ["a", "bee"]
        # every line has the same width structure
        assert lines[1].startswith("-")

    def test_title_prepended(self):
        out = format_table(["c"], [(1,)], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        out = format_table(["v"], [(1234.5678,), (12.3456,), (0.123456,)])
        body = out.splitlines()[2:]
        assert body[0].strip() == "1235"
        assert body[1].strip() == "12.35"
        assert body[2].strip() == "0.123"

    def test_sequence_cells_joined(self):
        out = format_table(["hosts"], [(["a", "b"],)])
        assert "a, b" in out


class TestSeriesToText:
    def test_downsamples_long_series(self):
        series = [(i, i * 2) for i in range(1000)]
        out = series_to_text(series, "x", "y", max_points=10)
        # header + rule + <= ~12 rows
        assert len(out.splitlines()) < 16

    def test_keeps_last_point(self):
        series = [(i, i) for i in range(100)]
        out = series_to_text(series, "x", "y", max_points=5)
        assert "99" in out

    def test_short_series_complete(self):
        series = [(1, 10), (2, 20)]
        out = series_to_text(series, "x", "y")
        assert "10" in out and "20" in out


class TestComparison:
    def test_rows_render(self):
        out = format_comparison([
            ComparisonRow("metric-a", 1.0, 1.1, note="close"),
        ])
        assert "metric-a" in out
        assert "close" in out


class TestSlopeAnalysis:
    def test_slope_of_perfect_line(self):
        points = [(x, 3.0 * x + 7.0) for x in range(0, 100, 10)]
        assert _slope(points) == pytest.approx(3.0)

    def test_slope_requires_two_points(self):
        with pytest.raises(ValueError):
            _slope([(1, 1.0)])

    def test_slope_rejects_degenerate_x(self):
        with pytest.raises(ValueError):
            _slope([(5, 1.0), (5, 2.0)])

    def test_knee_slopes_on_synthetic_knee(self):
        mtu = 1500
        knee = mtu - 28

        def rtt(s):
            if s <= knee:
                return 1e-3 + s * 5e-7
            return 1e-3 + knee * 5e-7 + (s - knee) * 1e-7

        series = [(s, rtt(s)) for s in range(1, 6001, 10)]
        below, above = knee_slopes(series, mtu)
        assert below == pytest.approx(5e-7, rel=0.05)
        assert above == pytest.approx(1e-7, rel=0.05)
