"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def run_process(sim: Simulator, gen, until: float | None = None):
    """Run ``gen`` as a process to completion and return its value."""
    proc = sim.process(gen)
    sim.run(until)
    assert proc.processed, "process did not finish within the horizon"
    return proc.value
