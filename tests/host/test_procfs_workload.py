"""Tests for the synthesized /proc and the SuperPI-style workload."""

from __future__ import annotations

import pytest

from repro.host import Machine, ProcFS, SuperPiWorkload, PeriodicDiskLoad


@pytest.fixture
def machine(sim):
    return Machine(sim, "box", bogomips=3394.76, mem_bytes=256 << 20)


@pytest.fixture
def procfs(machine):
    return ProcFS(machine)


class TestProcFiles:
    def test_loadavg_format(self, procfs):
        parts = procfs.read("/proc/loadavg").split()
        assert len(parts) == 5
        float(parts[0]), float(parts[1]), float(parts[2])
        assert "/" in parts[3]

    def test_stat_has_cpu_and_disk_lines(self, procfs):
        text = procfs.read("/proc/stat")
        assert text.startswith("cpu  ")
        assert "disk_io:" in text

    def test_meminfo_has_24_style_byte_table(self, procfs):
        text = procfs.read("/proc/meminfo")
        assert "Mem:" in text
        mem_line = [l for l in text.splitlines() if l.startswith("Mem:")][0]
        total, used, free = (int(x) for x in mem_line.split()[1:4])
        assert total == 256 << 20
        assert used + free == total

    def test_cpuinfo_carries_bogomips(self, procfs):
        assert "bogomips\t: 3394.76" in procfs.read("/proc/cpuinfo")

    def test_net_dev_lists_lo_even_without_nics(self, procfs):
        assert "lo:" in procfs.read("/proc/net/dev")

    def test_unknown_path_raises(self, procfs):
        with pytest.raises(FileNotFoundError):
            procfs.read("/proc/does-not-exist")


class TestMachine:
    def test_speed_falls_back_to_generic(self, sim):
        m = Machine(sim, "m", bogomips=1000, mem_bytes=1 << 20,
                    speeds={"matmul": 5e6})
        assert m.speed("matmul") == 5e6
        assert m.speed("unknown-kind") == 1000

    def test_compute_duration_scales_with_speed(self, sim):
        m = Machine(sim, "m", bogomips=1000, mem_bytes=1 << 20,
                    speeds={"matmul": 2e6})
        done = {}

        def p():
            yield m.compute(4e6, kind="matmul")
            done["t"] = sim.now

        sim.process(p())
        sim.run()
        assert done["t"] == pytest.approx(2.0)

    def test_invalid_params_rejected(self, sim):
        with pytest.raises(ValueError):
            Machine(sim, "m", bogomips=0, mem_bytes=1 << 20)
        m = Machine(sim, "m", bogomips=1, mem_bytes=1 << 20)
        with pytest.raises(ValueError):
            m.compute(-1)


class TestSuperPiWorkload:
    def test_occupies_memory_and_cpu(self, sim, machine):
        w = SuperPiWorkload(sim, machine, digits_param=25)
        free_before = machine.memory.snapshot()["free"]
        w.start()
        sim.run(until=120.0)
        assert machine.memory.snapshot()["free"] < free_before
        assert machine.cpu.loadavg.read()[0] > 0.8
        # thesis: parameter 25 occupies ~150 MB
        assert w.mem_bytes == pytest.approx(150 << 20, rel=0.01)

    def test_stop_releases_memory_and_cpu(self, sim, machine):
        w = SuperPiWorkload(sim, machine, digits_param=10)
        free_before = machine.memory.snapshot()["free"]
        w.start()
        sim.run(until=10.0)
        w.stop()
        sim.run(until=11.0)
        assert machine.memory.snapshot()["free"] == free_before
        assert machine.cpu.n_running == 0
        assert not w.running

    def test_double_start_rejected(self, sim, machine):
        w = SuperPiWorkload(sim, machine, digits_param=5)
        w.start()
        with pytest.raises(RuntimeError):
            w.start()

    def test_slows_competing_compute(self, sim, machine):
        w = SuperPiWorkload(sim, machine, digits_param=5)
        times = {}

        def measured(tag):
            t0 = sim.now
            yield machine.compute(machine.bogomips * 2)  # 2 dedicated seconds
            times[tag] = sim.now - t0

        def scenario():
            yield from measured("alone")
            w.start()
            yield from measured("contended")
            w.stop()

        sim.process(scenario())
        sim.run(until=100)
        assert times["contended"] == pytest.approx(2 * times["alone"], rel=0.05)


class TestPeriodicDiskLoad:
    def test_generates_disk_activity(self, sim, machine):
        load = PeriodicDiskLoad(sim, machine, nbytes=1 << 20, interval=0.5)
        load.start()
        sim.run(until=5.0)
        load.stop()
        assert machine.disk.wreq >= 8
        assert machine.disk.wblocks > 0
