"""Tests for memory accounting and the disk model."""

from __future__ import annotations

import pytest

from repro.host import BLOCK_BYTES, Disk, Memory, OutOfMemory
from tests.conftest import run_process


class TestMemory:
    def test_alloc_free_roundtrip(self):
        mem = Memory(256 << 20)
        before = mem.snapshot()["free"]
        h = mem.alloc(50 << 20, owner="test")
        assert mem.snapshot()["free"] < before
        mem.free(h)
        assert mem.snapshot()["free"] == before

    def test_oom_raises(self):
        mem = Memory(64 << 20)
        with pytest.raises(OutOfMemory):
            mem.alloc(128 << 20)

    def test_double_free_rejected(self):
        mem = Memory(64 << 20)
        h = mem.alloc(1 << 20)
        mem.free(h)
        with pytest.raises(ValueError):
            mem.free(h)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Memory(0)
        mem = Memory(64 << 20)
        with pytest.raises(ValueError):
            mem.alloc(0)

    def test_snapshot_invariants(self):
        mem = Memory(256 << 20)
        mem.alloc(100 << 20)
        snap = mem.snapshot()
        assert snap["used"] + snap["free"] == snap["total"]
        assert snap["free"] >= 0
        assert snap["buffers"] >= 0 and snap["cached"] >= 0

    def test_page_cache_shrinks_under_pressure(self):
        """Like Table 4.1: buffers/cached give way to a big allocation."""
        mem = Memory(256 << 20)
        cached_before = mem.snapshot()["cached"]
        mem.alloc(200 << 20, owner="super_pi")
        snap = mem.snapshot()
        assert snap["buffers"] + snap["cached"] < cached_before + (18 << 20)
        assert snap["free"] >= 0


class TestDisk:
    def test_read_takes_time(self, sim):
        disk = Disk(sim, throughput_bps=8e6, seek_time=1e-3)  # 1 MB/s

        def p():
            yield disk.read(1_000_000)
            return sim.now

        assert run_process(sim, p()) == pytest.approx(1.001, rel=0.01)

    def test_counters_track_requests_and_blocks(self, sim):
        disk = Disk(sim)

        def p():
            yield disk.read(1024)
            yield disk.write(4096)

        sim.process(p())
        sim.run()
        assert disk.rreq == 1 and disk.wreq == 1
        assert disk.allreq == 2
        assert disk.rblocks == 1024 // BLOCK_BYTES
        assert disk.wblocks == 4096 // BLOCK_BYTES

    def test_io_serialises(self, sim):
        disk = Disk(sim, throughput_bps=8e6, seek_time=0.0)
        ends = []

        def p():
            yield disk.read(1_000_000)
            ends.append(sim.now)

        sim.process(p())
        sim.process(p())
        sim.run()
        assert ends[1] == pytest.approx(2.0, rel=0.01)

    def test_invalid_io_rejected(self, sim):
        disk = Disk(sim)
        with pytest.raises(ValueError):
            disk.read(0)
        with pytest.raises(ValueError):
            Disk(sim, throughput_bps=0)
