"""Tests for the processor-sharing CPU and load averages."""

from __future__ import annotations

import math

import pytest

from repro.host import CPU
from tests.conftest import run_process


class TestProcessorSharing:
    def test_single_task_runs_at_full_speed(self, sim):
        cpu = CPU(sim)

        def p():
            yield cpu.run(2.0)
            return sim.now

        assert run_process(sim, p()) == pytest.approx(2.0)

    def test_two_equal_tasks_take_twice_as_long(self, sim):
        cpu = CPU(sim)
        ends = []

        def p(work):
            yield cpu.run(work)
            ends.append(sim.now)

        sim.process(p(1.0))
        sim.process(p(1.0))
        sim.run()
        assert ends == pytest.approx([2.0, 2.0])

    def test_short_task_leaves_then_long_task_speeds_up(self, sim):
        cpu = CPU(sim)
        ends = {}

        def p(tag, work):
            yield cpu.run(work)
            ends[tag] = sim.now

        sim.process(p("short", 1.0))
        sim.process(p("long", 3.0))
        sim.run()
        # short: shares until it has done 1.0 -> at t=2.0.
        # long then has 2.0 left alone -> t=4.0.
        assert ends["short"] == pytest.approx(2.0)
        assert ends["long"] == pytest.approx(4.0)

    def test_late_arrival_slows_running_task(self, sim):
        cpu = CPU(sim)
        ends = {}

        def first():
            yield cpu.run(2.0)
            ends["first"] = sim.now

        def second():
            yield sim.timeout(1.0)
            yield cpu.run(2.0)
            ends["second"] = sim.now

        sim.process(first())
        sim.process(second())
        sim.run()
        # first does 1.0 alone, then shares: 1.0 left at half speed -> t=3
        assert ends["first"] == pytest.approx(3.0)
        # second: 1.0 done by t=3 (shared), 1.0 alone -> t=4
        assert ends["second"] == pytest.approx(4.0)

    def test_total_throughput_conserved(self, sim):
        """N tasks of equal work all finish at N*work (work conservation)."""
        cpu = CPU(sim)
        ends = []

        def p():
            yield cpu.run(1.0)
            ends.append(sim.now)

        for _ in range(5):
            sim.process(p())
        sim.run()
        assert ends == pytest.approx([5.0] * 5)

    def test_zero_work_completes_immediately(self, sim):
        cpu = CPU(sim)

        def p():
            yield cpu.run(0.0)
            return sim.now

        assert run_process(sim, p()) == 0.0

    def test_negative_work_rejected(self, sim):
        cpu = CPU(sim)
        with pytest.raises(ValueError):
            cpu.run(-1.0)


class TestAccounting:
    def test_busy_time_tracks_activity(self, sim):
        cpu = CPU(sim)

        def p():
            yield cpu.run(1.0)
            yield sim.timeout(3.0)  # idle gap
            yield cpu.run(1.0)

        sim.process(p())
        sim.run()
        assert cpu.utilisation_seconds() == pytest.approx(2.0)

    def test_stat_jiffies_split_busy_idle(self, sim):
        cpu = CPU(sim)

        def p():
            yield cpu.run(2.0)
            yield sim.timeout(8.0)

        sim.process(p())
        sim.run()
        user, nice, system, idle = cpu.stat_jiffies()
        assert user == 200
        assert idle == 800
        assert (nice, system) == (0, 0)

    def test_completed_tasks_counted(self, sim):
        cpu = CPU(sim)

        def p():
            yield cpu.run(0.5)

        for _ in range(3):
            sim.process(p())
        sim.run()
        assert cpu.completed_tasks == 3


class TestLoadAverage:
    def test_load_rises_toward_runnable_count(self, sim):
        cpu = CPU(sim)

        def hog():
            while True:
                yield cpu.run(1.0)

        sim.process(hog())
        sim.run(until=60.0)
        l1, l5, l15 = cpu.loadavg.read()
        assert l1 == pytest.approx(1 - math.exp(-1), rel=0.05)  # ~0.63
        assert l5 < l1  # slower horizon lags

    def test_load_decays_after_idle(self, sim):
        cpu = CPU(sim)

        def burst():
            yield cpu.run(60.0)

        sim.process(burst())
        sim.run(until=60.0)
        l1_busy = cpu.loadavg.read()[0]
        sim.run(until=240.0)
        l1_idle = cpu.loadavg.read()[0]
        assert l1_idle < l1_busy / 10

    def test_two_hogs_approach_two(self, sim):
        cpu = CPU(sim)

        def hog():
            while True:
                yield cpu.run(0.5)

        sim.process(hog())
        sim.process(hog())
        sim.run(until=600.0)
        assert cpu.loadavg.read()[0] == pytest.approx(2.0, abs=0.01)
