#!/usr/bin/env python
"""Reliable sockets: suspend/resume across a simulated migration (§6).

The thesis' future-work chapter sketches socket suspend/resume so that
"program recovery and process migration steps can be done more smoothly"
(citing the rsocks work).  This example drives that extension: a client
streams work results to a collector over a :class:`ReliableSocket`,
suspends mid-stream (as a migrating process would), keeps producing into
the session buffer while detached, resumes, and the collector receives
every message exactly once, in order.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.core import ReliableServer, ReliableSocket

N_MESSAGES = 12
SUSPEND_AT = 5  # suspend after this many messages


def main() -> None:
    cluster = Cluster(seed=99)
    worker = cluster.add_host("worker")
    collector_host = cluster.add_host("collector")
    cluster.link(worker, collector_host)
    cluster.finalize()

    server = ReliableServer(collector_host.stack, 7100)
    server.start()
    received: list[tuple[int, float]] = []

    def collector():
        session = yield server.accept()
        while len(received) < N_MESSAGES:
            msg, _ = yield session.recv()
            received.append((msg, cluster.sim.now))
            session.send(("ack-app", msg), 32)  # application-level reply

    def producer():
        rsock = ReliableSocket(worker.stack, "collector", 7100)
        yield from rsock.connect()
        for i in range(N_MESSAGES):
            rsock.send(i, 256)
            if i + 1 == SUSPEND_AT:
                print(f"t={cluster.sim.now:6.3f}s  suspending after message {i} "
                      "(process migrates...)")
                rsock.suspend()
                # messages sent while detached are buffered in the session
                yield cluster.sim.timeout(3.0)
            else:
                yield cluster.sim.timeout(0.2)
        # resume happens lazily here, after the "migration" window
        if not rsock.attached:
            print(f"t={cluster.sim.now:6.3f}s  resuming session "
                  f"#{rsock.session_id}")
            yield from rsock.resume()
        # drain application replies
        for _ in range(N_MESSAGES):
            msg, _ = yield rsock.recv()
            assert msg[0] == "ack-app"
        return rsock

    cluster.sim.process(collector())
    proc = cluster.sim.process(producer())
    cluster.run(until=120.0)

    sequence = [m for m, _ in received]
    print(f"\ncollector received {len(received)} messages: {sequence}")
    assert sequence == list(range(N_MESSAGES)), "lost or reordered messages!"
    rsock = proc.value
    print(f"session reconnects: {rsock.reconnects}, "
          f"retransmitted on resume: {rsock.retransmitted}")
    print("exactly-once, in-order delivery across the suspend/resume ✓")


if __name__ == "__main__":
    main()
