#!/usr/bin/env python
"""The one-way UDP stream method, step by step (thesis §3.3.2).

Walks through the network monitor's measurement machinery on a 100 Mbps
path under light cross traffic:

1. sweep probe sizes 1→6000 B and show the RTT knee at the MTU;
2. estimate available bandwidth with probe pairs below and above the MTU,
   demonstrating the ``Speed_init`` distortion of Eq. 3.7;
3. compare against the pipechar-style and pathload-style estimators;
4. re-run with an rshaper cap to show the probes *see* the shaper.

Run:  python examples/bandwidth_probing.py
"""

from __future__ import annotations

from repro.apps import shape_host_egress
from repro.bench import knee_slopes
from repro.bench.experiments import _cross_traffic, _drive
from repro.cluster import Cluster
from repro.core import estimate_bandwidth, pathload_estimate, pipechar_estimate, rtt_curve
from repro.net import MBPS


def build_path(shaped_mbps=None):
    cluster = Cluster(seed=5)
    src = cluster.add_host("prober")
    dst = cluster.add_host("target")
    sw = cluster.add_switch("sw")
    l1 = cluster.link(src, sw, rate_bps=100 * MBPS)
    l2 = cluster.link(sw, dst, rate_bps=100 * MBPS)
    cluster.finalize()
    _cross_traffic(cluster, [l1.ab, l2.ab], utilisation=0.03)
    if shaped_mbps:
        shape_host_egress(src, shaped_mbps)
    return cluster, src, dst


def main() -> None:
    cluster, src, dst = build_path()
    results: dict = {}

    def experiment():
        # 1. the RTT knee
        series = yield from rtt_curve(src.stack, dst.addr, range(1, 6001, 50))
        results["series"] = series

        # 2. probe pairs below vs above the MTU
        low = yield from estimate_bandwidth(src.stack, dst.addr,
                                            s1=100, s2=1000, samples=4)
        high = yield from estimate_bandwidth(src.stack, dst.addr,
                                             s1=1600, s2=2900, samples=4)
        results["low"], results["high"] = low, high

        # 3. reference estimators
        results["pipechar"] = yield from pipechar_estimate(src.stack, dst.addr)
        results["pathload"] = yield from pathload_estimate(src.stack, dst.addr)

    proc = cluster.sim.process(experiment())
    _drive(cluster, proc)

    below, above = knee_slopes(results["series"], 1500)
    print("1) RTT knee (thesis Fig 3.3)")
    print(f"   slope below MTU: {below * 1e9:6.1f} ns/byte")
    print(f"   slope above MTU: {above * 1e9:6.1f} ns/byte  "
          f"(ratio {below / above:.1f}x — the knee)")

    print("\n2) one-way UDP stream estimates (thesis Table 3.3)")
    print(f"   probes 100~1000 B (below MTU): {results['low'].avg_bps / 1e6:6.2f} Mbps"
          "   <- crushed by Speed_init")
    print(f"   probes 1600~2900 B (above MTU): {results['high'].avg_bps / 1e6:6.2f} Mbps"
          "  <- the tuned pair")

    print("\n3) reference estimators")
    print(f"   pipechar-style packet pair: {results['pipechar'] / 1e6:6.2f} Mbps")
    lo, hi = results["pathload"]
    print(f"   pathload-style SLoPS range: {lo / 1e6:6.2f} ~ {hi / 1e6:.2f} Mbps")

    # 4. shaped re-run
    cluster2, src2, dst2 = build_path(shaped_mbps=6.72)
    shaped: dict = {}

    def shaped_probe():
        est = yield from estimate_bandwidth(src2.stack, dst2.addr, samples=4)
        shaped["est"] = est

    proc = cluster2.sim.process(shaped_probe())
    _drive(cluster2, proc)
    print("\n4) with an rshaper cap of 6.72 Mbps on the prober's uplink")
    print(f"   estimate: {shaped['est'].avg_bps / 1e6:6.2f} Mbps "
          "(the monitor sees the shaper — this is what drives Tables 5.7-5.9)")


if __name__ == "__main__":
    main()
