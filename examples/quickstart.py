#!/usr/bin/env python
"""Quickstart: ask the Smart socket library for servers instead of naming them.

Builds a small simulated cluster (one wizard/monitor machine, one client,
five servers of varying speed and load), deploys the full monitoring plane
— probes, monitors, transmitter/receiver, wizard — and then lets a client
application request "two fast, idle servers with enough memory" in the
requirement meta-language.  The library answers with *connected sockets*.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.cluster import Cluster, Deployment
from repro.core import Config
from repro.host import SuperPiWorkload

REQUIREMENT = """
# two fast, idle servers with some headroom, please
host_cpu_bogomips > 3000
host_cpu_free >= 0.9
host_memory_free > 64        # MB
host_system_load1 < 0.5
"""


def main() -> None:
    # --- build the world -------------------------------------------------
    cluster = Cluster(seed=42)
    wizard_host = cluster.add_host("wizard-box", bogomips=4000)
    client_host = cluster.add_host("client-box")
    core = cluster.add_switch("core")
    cluster.link(wizard_host, core)
    cluster.link(client_host, core)

    servers = []
    for name, bogomips, mem in [
        ("ares", 4771.0, 512), ("boreas", 4771.0, 512), ("chaos", 3394.0, 256),
        ("dione", 1730.0, 128), ("eos", 3591.0, 256),
    ]:
        host = cluster.add_host(name, bogomips=bogomips, mem_mb=mem)
        cluster.link(host, core)
        servers.append(host)
    cluster.finalize()

    # --- deploy the Smart library -----------------------------------------
    config = Config(probe_interval=1.0, transmit_interval=1.0)
    deployment = Deployment(cluster, wizard_host=wizard_host, config=config)
    deployment.add_group("pool", monitor_host=wizard_host, servers=servers)
    deployment.start()

    # keep one fast machine busy so the wizard has something to avoid
    SuperPiWorkload(cluster.sim, cluster.host("boreas").machine).start()

    # a trivial echo service on every server's service port
    def echo_service(host):
        listener = host.stack.tcp.listen(config.ports.service)
        while True:
            conn = yield listener.accept()
            cluster.sim.process(echo_session(conn))

    def echo_session(conn):
        while True:
            msg, nbytes = yield conn.recv()
            conn.send(("echo", msg), nbytes)

    for server in servers:
        cluster.sim.process(echo_service(server))

    # --- the client application -------------------------------------------
    client = deployment.client_for(client_host)
    report: dict = {}

    def app():
        # let the monitoring plane warm up (probes -> monitor -> wizard),
        # and give boreas' load average time to climb past 0.5
        yield cluster.sim.timeout(60.0)
        conns = yield from client.smart_sockets(REQUIREMENT, n=2)
        names = [cluster.network.hostname_of(c.remote_addr) for c in conns]
        report["servers"] = names
        # use the sockets: ping each selected server
        for conn in conns:
            conn.send(("ping", b"x" * 16), 1024)
        for conn in conns:
            msg, _ = yield conn.recv()
            assert msg[0] == "echo"
        report["rtt_done_at"] = cluster.sim.now

    cluster.sim.process(app())
    cluster.run(until=120.0)

    print("requirement:")
    print(REQUIREMENT)
    print(f"wizard returned + connected: {report['servers']}")
    print("(boreas was skipped: SuperPI pushed its load_1 above 0.5;")
    print(" dione was skipped: bogomips 1730 < 3000)")
    picked = set(report["servers"])
    assert len(picked) == 2, report
    assert picked <= {"ares", "chaos", "eos"}, report
    assert picked.isdisjoint({"boreas", "dione"}), report


if __name__ == "__main__":
    main()
