#!/usr/bin/env python
"""Distributed matrix multiplication on the thesis testbed (§5.3.1).

Reproduces the flavour of the 2-vs-2 experiment (Table 5.3) end to end,
*with real numerics*: the master ships real NumPy stripes to the selected
workers, every block product is computed remotely, reassembled, and checked
against a local ``A @ B``.

Two arms are compared on identical fresh worlds:

* random selection (the conventional-socket baseline), and
* the Smart library with ``bogomips > 4000 && cpu_free > 0.9 && mem_free > 5``.

Run:  python examples/matrix_multiplication.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import MatMulMaster, MatMulWorker, local_multiply
from repro.bench.experiments import _drive
from repro.cluster import Deployment, build_testbed
from repro.core import Config, RandomSelector

N = 400          # scaled down from the thesis' 1500 so numerics stay snappy
BLK = 100
REQUIREMENT = ("(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && "
               "(host_memory_free > 5)")
SERVER_NAMES = ("sagit", "dalmatian", "mimas", "telesto", "lhost", "helene",
                "phoebe", "calypso", "dione", "titan-x", "pandora-x")


def run_arm(label: str, smart: bool, a: np.ndarray, b: np.ndarray):
    cluster = build_testbed(seed=7)
    config = Config(probe_interval=1.0, transmit_interval=1.0)
    deployment = Deployment(cluster, wizard_host=cluster.host("dalmatian"),
                            config=config)
    deployment.add_group("lab", monitor_host=cluster.host("dalmatian"),
                         servers=[cluster.host(n) for n in SERVER_NAMES])
    for name in SERVER_NAMES:
        MatMulWorker(cluster.host(name), mss=8192).start()
    deployment.start()

    out: dict = {}

    def driver():
        yield cluster.sim.timeout(deployment.warm_up_seconds())
        master_host = cluster.host("dalmatian")
        if smart:
            client = deployment.client_for(master_host)
            conns = yield from client.smart_sockets(REQUIREMENT, 2, mss=8192)
        else:
            picks = RandomSelector(
                [n for n in SERVER_NAMES if n != "dalmatian"],
                rng=cluster.streams.stream("baseline"),
            ).select(2)
            conns = []
            for name in picks:
                conn = yield from master_host.stack.tcp.connect(
                    cluster.network.resolve(name), 9000, mss=8192)
                conns.append(conn)
        master = MatMulMaster(master_host)
        result = yield from master.run(conns, n=N, blk=BLK, a=a, b=b)
        out["result"] = result

    proc = cluster.sim.process(driver())
    _drive(cluster, proc)
    result = out["result"]
    names = [cluster.network.hostname_of(addr) for addr in result.servers]
    print(f"{label:>7}: servers={names}  sim-time={result.elapsed:6.2f} s  "
          f"blocks={ {cluster.network.hostname_of(k): v for k, v in result.blocks_per_server.items()} }")
    return result


def main() -> None:
    rng = np.random.default_rng(0)
    a = rng.standard_normal((N, N))
    b = rng.standard_normal((N, N))
    expected = local_multiply(a, b)

    print(f"multiplying two {N}x{N} matrices in {BLK}x{BLK} blocks "
          f"on the 11-machine thesis testbed\n")
    baseline = run_arm("random", smart=False, a=a, b=b)
    smart = run_arm("smart", smart=True, a=a, b=b)

    np.testing.assert_allclose(baseline.product, expected)
    np.testing.assert_allclose(smart.product, expected)
    print("\nboth distributed products match the local A @ B exactly")
    gain = 100 * (1 - smart.elapsed / baseline.elapsed)
    print(f"smart selection was {gain:.1f}% faster "
          f"(thesis Table 5.3 reports 37.1% at full scale)")


if __name__ == "__main__":
    main()
