#!/usr/bin/env python
"""A tour of the server-requirement meta-language (thesis Ch. 4, App. B).

Shows, without any networking, what the wizard's matching core does with a
requirement: lexing, parsing, logical/non-logical classification, temp
variables, math builtins, user-side preference/blacklist slots and the
error semantics (undefined variables, division by zero).

Run:  python examples/requirement_language.py
"""

from __future__ import annotations

from repro.lang import (
    SERVER_SIDE_VARS,
    USER_SIDE_VARS,
    evaluate,
    is_logical,
    parse,
    tokenize,
)

SERVER_FAST_IDLE = {
    "host_cpu_bogomips": 4771.02,
    "host_cpu_free": 0.98,
    "host_memory_free": 420.0,     # MB
    "host_system_load1": 0.07,
    "host_network_tbytesps": 1.2e4,
    "host_security_level": 2.0,
}

SERVER_BUSY = dict(SERVER_FAST_IDLE,
                   host_cpu_free=0.04, host_system_load1=1.43)


def show(title: str, requirement: str, server: dict) -> None:
    program = parse(requirement)
    result = evaluate(program, server)
    print(f"--- {title}")
    for line in requirement.strip().splitlines():
        print(f"    {line}")
    kinds = [("logical" if is_logical(s) else "side-effect")
             for s in program.statements]
    print(f"    -> statements: {kinds}")
    print(f"    -> qualified: {result.qualified}"
          + (f", errors: {result.errors}" if result.errors else ""))
    if result.env.denied_hosts():
        print(f"    -> denied hosts: {result.env.denied_hosts()}")
    if result.env.preferred_hosts():
        print(f"    -> preferred hosts: {result.env.preferred_hosts()}")
    print()


def main() -> None:
    print(f"{len(SERVER_SIDE_VARS)} server-side variables, "
          f"{len(USER_SIDE_VARS)} user-side variables\n")

    # 1. the thesis' own sample requirement (§3.6.2)
    sample = """host_system_load1 < 1
host_memory_used <= 250*1024*1024
host_cpu_free >= 0.9
host_network_tbytesps < 1024*1024  # for network IO
user_denied_host1 = 137.132.90.182
user_preferred_host1 = sagit.ddns.comp.nus.edu.sg
"""
    show("thesis §3.6.2 sample", sample,
         dict(SERVER_FAST_IDLE, host_memory_used=100 * 1024 * 1024))

    # 2. temp variables and math builtins
    show("temp variables + builtins",
         """headroom = 1 - host_cpu_free
log10(host_cpu_bogomips) > 3.5
headroom < 0.1
""", SERVER_FAST_IDLE)

    # 3. the same requirement rejects a busy server
    show("busy server fails the same requirement",
         "host_cpu_free > 0.9 && host_system_load1 < 0.5", SERVER_BUSY)

    # 4. undefined variables make logical statements false (not crashes)
    show("undefined variable semantics",
         "host_gpu_teraflops > 1", SERVER_FAST_IDLE)

    # 5. division by zero is recorded, statement counts as unsatisfied
    show("division by zero",
         "margin = 0\nhost_cpu_bogomips / margin > 1", SERVER_FAST_IDLE)

    # 6. lexing, for the curious
    tokens = [f"{t.kind}:{t.text!r}" for t in tokenize("(a+b) <= 2^10 # hi")]
    print("--- token stream of '(a+b) <= 2^10 # hi'")
    print("   ", " ".join(tokens))


if __name__ == "__main__":
    main()
