#!/usr/bin/env python
"""Massive download with bandwidth-aware server selection (thesis §5.3.2).

Six file servers sit in two groups whose uplinks are capped by an
rshaper-style token bucket (group-1 fast, group-2 slow).  Each group runs
its own network monitor; monitors probe each other with the one-way UDP
stream method, so the wizard knows the (delay, bandwidth) of every
group-to-group path.  The client asks for servers on paths faster than
6 Mbps — and outruns a random pick by the thesis' factor.

Run:  python examples/massive_download.py
"""

from __future__ import annotations

from repro.apps import FileServer, MassdClient, shape_host_egress
from repro.bench.experiments import _drive
from repro.cluster import Deployment, build_testbed
from repro.core import Config

GROUP1 = ("mimas", "telesto", "lhost")     # shaped to 8 Mbps (fast)
GROUP2 = ("dione", "titan-x", "pandora-x")  # shaped to 1.5 Mbps (slow)
DATA_KB = 20000
BLK_KB = 100


def run_arm(label: str, servers_or_requirement, n_servers: int):
    cluster = build_testbed(seed=11)
    config = Config(probe_interval=1.0, transmit_interval=1.0,
                    netmon_interval=1.0)
    deployment = Deployment(cluster, wizard_host=cluster.host("dalmatian"),
                            config=config)
    deployment.add_group("campus", monitor_host=cluster.host("sagit"),
                         servers=[])
    deployment.add_group("group-1", monitor_host=cluster.host(GROUP1[0]),
                         servers=[cluster.host(x) for x in GROUP1])
    deployment.add_group("group-2", monitor_host=cluster.host(GROUP2[0]),
                         servers=[cluster.host(x) for x in GROUP2])
    for name in GROUP1:
        shape_host_egress(cluster.host(name), 8.0)
    for name in GROUP2:
        shape_host_egress(cluster.host(name), 1.5)
    for name in GROUP1 + GROUP2:
        FileServer(cluster.host(name), mss=8192).start()
    deployment.start()

    out: dict = {}

    def driver():
        yield cluster.sim.timeout(deployment.warm_up_seconds() + 4.0)
        client_host = cluster.host("sagit")
        if isinstance(servers_or_requirement, str):
            client = deployment.client_for(client_host)
            conns = yield from client.smart_sockets(
                servers_or_requirement, n_servers, mss=8192)
        else:
            conns = []
            for name in servers_or_requirement:
                conn = yield from client_host.stack.tcp.connect(
                    cluster.network.resolve(name), 9000, mss=8192)
                conns.append(conn)
        downloader = MassdClient(client_host)
        result = yield from downloader.run(conns, data_kb=DATA_KB, blk_kb=BLK_KB)
        out["result"] = result

    proc = cluster.sim.process(driver())
    _drive(cluster, proc, horizon=360000.0)
    result = out["result"]
    names = [cluster.network.hostname_of(a) for a in result.servers]
    print(f"{label:>7}: servers={names}")
    print(f"         throughput {result.throughput_kbps:7.1f} KB/s "
          f"({result.throughput_mbps:.2f} Mbps) in {result.elapsed:.1f} sim-s")
    return result


def main() -> None:
    print(f"downloading {DATA_KB} KB in {BLK_KB} KB blocks from 2 servers\n")
    slow = run_arm("random", ("dione", "titan-x"), 2)       # thesis-style bad luck
    fast = run_arm("smart", "monitor_network_bw > 6", 2)
    factor = fast.throughput_kbps / slow.throughput_kbps
    print(f"\nsmart selection downloaded {factor:.1f}x faster "
          f"(thesis Table 5.7 reports ~5x for its 1-server case)")
    assert factor > 3.0


if __name__ == "__main__":
    main()
